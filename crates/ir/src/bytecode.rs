//! The stack-machine bytecode executed by the `dse-runtime` VM.
//!
//! Design notes:
//!
//! * Operand-stack values are `i64` or `f64`; memory is byte-addressable and
//!   loads/stores carry an access width (1/2/4/8). Integer loads
//!   sign-extend; stores truncate — matching the C integer model.
//! * Every `Load`/`Store`/`MemCpy` carries the [`SiteId`] of its static
//!   access site (or [`NO_SITE`](crate::sites::NO_SITE) for synthetic
//!   accesses), which is how the dependence profiler attributes dynamic
//!   accesses to program points.
//! * `LoopMark` instructions are no-ops for plain execution but delimit
//!   candidate-loop iterations for the profiler (serial lowering only).
//! * `ParLoop` hands a `[lo, hi)` iteration range to the parallel executor;
//!   the loop body is a separate code region ending in `Ret`. `Wait`/`Post`
//!   implement DOACROSS cross-iteration ordering; `Localize` is the hook for
//!   the runtime-privatization baseline (Section 4.2.1 of the paper).

use crate::loops::ParMode;
use crate::sites::{SiteId, SiteTable};
use dse_lang::types::TypeTable;
use std::fmt;

/// Program counter: index into [`CompiledProgram::code`].
pub type Pc = u32;

/// Integer binary operators. Arithmetic wraps (the Cee model treats the
/// workloads' 32-bit mixing arithmetic as masked 64-bit arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison operators (result is an `i64` 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Builtin functions implemented by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `malloc(n)` — allocate `n` bytes, push address.
    Malloc,
    /// `calloc(n, m)` — allocate `n*m` zeroed bytes.
    Calloc,
    /// `realloc(p, n)` — resize, preserving `min(old, n)` bytes.
    Realloc,
    /// `free(p)`.
    Free,
    /// `in_long(i)` — i-th host-provided integer input.
    InLong,
    /// `in_float(i)` — i-th host-provided float input.
    InFloat,
    /// `in_len()` — number of host inputs.
    InLen,
    /// `out_long(v)` — append to host-visible output.
    OutLong,
    /// `out_float(v)` — append to host-visible output.
    OutFloat,
    /// `print_long(v)` — write to console stream.
    PrintLong,
    /// `print_float(v)` — write to console stream.
    PrintFloat,
    /// `fsqrt(x)`.
    Fsqrt,
    /// `fabs(x)`.
    Fabs,
    /// `__tid()` — worker index (0 outside parallel regions). Emitted by the
    /// expansion pass for redirection (Table 2 of the paper).
    Tid,
    /// `__nthreads()` — configured thread count N (Table 1).
    NThreads,
    /// `__realloc_expanded(p, n, old_span)` — expanded realloc: the block
    /// holds N copies of `old_span` bytes; resize to N copies of `n` bytes,
    /// moving each thread's copy. Emitted by the expansion pass.
    ReallocExpanded,
    /// `__memcpy(dst, src, n)` — raw byte copy, used by the expansion pass
    /// to seed copy 0 of re-homed globals from their static initializers.
    MemCpy,
}

impl Builtin {
    /// Number of arguments the builtin pops.
    pub fn arity(self) -> usize {
        match self {
            Builtin::InLen | Builtin::Tid | Builtin::NThreads => 0,
            Builtin::Malloc
            | Builtin::Free
            | Builtin::InLong
            | Builtin::InFloat
            | Builtin::OutLong
            | Builtin::OutFloat
            | Builtin::PrintLong
            | Builtin::PrintFloat
            | Builtin::Fsqrt
            | Builtin::Fabs => 1,
            Builtin::Calloc | Builtin::Realloc => 2,
            Builtin::ReallocExpanded | Builtin::MemCpy => 3,
        }
    }

    /// True if the builtin pushes a result value.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            Builtin::Free
                | Builtin::OutLong
                | Builtin::OutFloat
                | Builtin::PrintLong
                | Builtin::PrintFloat
                | Builtin::MemCpy
        )
    }

    /// Maps a source-level (or pass-injected) callee name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "malloc" => Builtin::Malloc,
            "calloc" => Builtin::Calloc,
            "realloc" => Builtin::Realloc,
            "free" => Builtin::Free,
            "in_long" => Builtin::InLong,
            "in_float" => Builtin::InFloat,
            "in_len" => Builtin::InLen,
            "out_long" => Builtin::OutLong,
            "out_float" => Builtin::OutFloat,
            "print_long" => Builtin::PrintLong,
            "print_float" => Builtin::PrintFloat,
            "fsqrt" => Builtin::Fsqrt,
            "fabs" => Builtin::Fabs,
            "__tid" => Builtin::Tid,
            "__nthreads" => Builtin::NThreads,
            "__realloc_expanded" => Builtin::ReallocExpanded,
            "__memcpy" => Builtin::MemCpy,
            _ => return None,
        })
    }
}

/// Profiler hooks emitted around candidate loops in serial lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopEvent {
    /// Execution is about to enter the loop.
    Begin,
    /// A new iteration starts.
    IterStart,
    /// Execution left the loop.
    End,
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push integer constant.
    PushI(i64),
    /// Push float constant.
    PushF(f64),
    /// Duplicate top of stack.
    Dup,
    /// Discard top of stack.
    Drop,
    /// Duplicate top and insert it *below* the second element:
    /// `[a, b] -> [b, a, b]`. Used to keep assignment values.
    Tuck,
    /// Push `frame_base + offset` (address of a local slot).
    FrameAddr(u32),
    /// Push the absolute address of a global.
    GlobalAddr(u32),
    /// Push a parallel-loop iteration index; the operand is the depth from
    /// the top of the thread's iteration stack (0 = innermost `ParLoop`).
    IterIdx(u8),
    /// Push `tid * k` in one step. The strength-reduced form of the
    /// redirection offsets `tid` and `tid * span / sizeof` with constant
    /// span — the addressing a native compiler folds into one instruction
    /// (keeping the Figure 9b overhead realistic).
    TidScaled(i64),
    /// Pop a span value, push the byte offset `tid * span / z * z` — the
    /// strength-reduced dynamic-span redirection (Table 2's
    /// `tid*span/sizeof(*p)` folded with the element scaling).
    TidSpanScaled(i64),
    /// Push `frame_base + offset + tid * stride` — the one-instruction
    /// addressing of an expanded local's private copy (`v[tid]`), as a
    /// native compiler's addressing modes would compute it.
    FrameAddrTid { offset: u32, stride: i64 },
    /// Push `addr + tid * stride` — the expanded-global equivalent.
    GlobalAddrTid { addr: u32, stride: i64 },
    /// Load `width` bytes from the popped address; sign-extends integers.
    Load {
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// Pop value then address; store `width` bytes (truncating).
    Store {
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// Pop destination then source address; copy `size` bytes.
    MemCpy {
        size: u32,
        load_site: SiteId,
        store_site: SiteId,
    },
    /// Integer binary op on the two top values (wrapping).
    IBin(IBinOp),
    /// Float binary op.
    FBin(FBinOp),
    /// Integer comparison, pushes 0/1.
    ICmp(CmpOp),
    /// Float comparison, pushes 0/1.
    FCmp(CmpOp),
    /// Integer negate.
    INeg,
    /// Float negate.
    FNeg,
    /// Bitwise not.
    BNot,
    /// Logical not on an integer (0 -> 1, nonzero -> 0).
    LNot,
    /// Convert integer to float.
    I2F,
    /// Convert float to integer (truncating toward zero).
    F2I,
    /// Truncate integer to `width` bytes and sign-extend back.
    SextTrunc(u8),
    /// Unconditional jump.
    Jump(Pc),
    /// Pop; jump if zero.
    JumpIfZ(Pc),
    /// Pop; jump if nonzero.
    JumpIfNZ(Pc),
    /// Call the function with the given index (args already pushed).
    Call(u32),
    /// Call a builtin.
    CallBuiltin(Builtin),
    /// Return from function (value on stack if non-void) or finish a
    /// parallel-loop body iteration.
    Ret,
    /// Profiler hook (no-op at plain execution) for the given loop id.
    LoopMark(LoopEvent, u32),
    /// Pop `hi` then `lo`; execute the loop body region of loop id for
    /// iterations `lo..hi` under the parallel scheduler.
    ParLoop(u32),
    /// DOACROSS: wait until all previous iterations of the loop have posted.
    Wait(u32),
    /// DOACROSS: signal that this iteration's ordered section is done.
    Post(u32),
    /// Runtime-privatization baseline: pop an address, push its
    /// thread-private translation (copy-in on first touch).
    Localize { site: SiteId },
    /// Stop the program.
    Halt,
}

/// How a parameter is passed. Only scalars (integers, floats, pointers) can
/// be parameters; aggregates are passed by pointer, as in idiomatic C hot
/// paths (the lowering rejects by-value aggregates with a clear error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamKind {
    /// Width of the parameter slot in bytes.
    pub width: u8,
    /// True when the parameter is a float.
    pub is_float: bool,
}

/// Return-value shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetKind {
    /// No value.
    Void,
    /// Scalar value.
    Scalar,
}

/// Per-function metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncInfo {
    /// Source name.
    pub name: String,
    /// Entry pc.
    pub entry: Pc,
    /// Frame size in bytes (params + locals, aligned).
    pub frame_size: u32,
    /// Parameter slots in order: (frame offset, kind).
    pub params: Vec<(u32, ParamKind)>,
    /// Return shape.
    pub ret: RetKind,
    /// True when the scalar return value is a float (meaningless for
    /// `RetKind::Void`). The register translator needs the callee's result
    /// type to type the caller's destination register.
    pub ret_float: bool,
}

/// A zero-initialized-by-default global with optional constant words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitValue {
    /// Integer value stored with the given byte width.
    Int(i64, u8),
    /// Float value (8 bytes).
    Float(f64),
}

/// Metadata for one candidate loop in the compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopCode {
    /// Loop label (pragma label or synthesized).
    pub label: String,
    /// Function containing the loop.
    pub func: u32,
    /// Scheduling mode this loop was lowered with (`None` in serial
    /// lowering, where the loop runs as an ordinary loop with marks).
    pub mode: Option<ParMode>,
    /// Entry pc of the outlined body region (parallel lowering only).
    pub body_entry: Pc,
    /// Frame offset of the induction variable in `func`'s frame.
    pub induction_offset: u32,
    /// Width in bytes of the induction variable.
    pub induction_width: u8,
}

/// The absolute address where the globals segment starts. The VM places
/// globals here; address 0..GLOBAL_BASE traps as null-pointer territory.
pub const GLOBAL_BASE: u64 = 4096;

/// A fully lowered program ready for the VM.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// All instructions; functions and loop bodies are regions within.
    pub code: Vec<Instr>,
    /// Function table.
    pub funcs: Vec<FuncInfo>,
    /// Index of `main` in [`CompiledProgram::funcs`].
    pub main: u32,
    /// Total byte size of the globals segment.
    pub globals_size: u64,
    /// Constant initial values: (absolute address, value).
    pub global_inits: Vec<(u64, InitValue)>,
    /// Static access sites.
    pub sites: SiteTable,
    /// Candidate-loop metadata, indexed by loop id.
    pub loops: Vec<LoopCode>,
    /// Struct layouts (needed by the runtime-priv baseline and debugging).
    pub types: TypeTable,
    /// Maps the pc of each `malloc`/`calloc`/`realloc` `CallBuiltin`
    /// instruction to the AST expression id of the call, so the profiler
    /// can attribute dynamic allocations to source allocation sites.
    pub alloc_sites: std::collections::HashMap<Pc, u32>,
}

impl CompiledProgram {
    /// Function metadata by index.
    pub fn func(&self, idx: u32) -> &FuncInfo {
        &self.funcs[idx as usize]
    }

    /// Finds a function index by name.
    pub fn func_by_name(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Finds a candidate loop id by label.
    pub fn loop_by_label(&self, label: &str) -> Option<u32> {
        self.loops
            .iter()
            .position(|l| l.label == label)
            .map(|i| i as u32)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_name_round_trip() {
        for (name, b) in [
            ("malloc", Builtin::Malloc),
            ("free", Builtin::Free),
            ("__tid", Builtin::Tid),
            ("__realloc_expanded", Builtin::ReallocExpanded),
        ] {
            assert_eq!(Builtin::from_name(name), Some(b));
        }
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn builtin_arity_and_result() {
        assert_eq!(Builtin::Malloc.arity(), 1);
        assert_eq!(Builtin::Calloc.arity(), 2);
        assert_eq!(Builtin::ReallocExpanded.arity(), 3);
        assert_eq!(Builtin::Tid.arity(), 0);
        assert!(Builtin::Malloc.has_result());
        assert!(!Builtin::Free.has_result());
        assert!(!Builtin::PrintLong.has_result());
    }

    #[test]
    fn compiled_program_lookups() {
        let mut p = CompiledProgram::default();
        p.funcs.push(FuncInfo {
            name: "main".into(),
            entry: 0,
            frame_size: 0,
            params: vec![],
            ret: RetKind::Void,
            ret_float: false,
        });
        p.loops.push(LoopCode {
            label: "hot".into(),
            func: 0,
            mode: None,
            body_entry: 0,
            induction_offset: 0,
            induction_width: 4,
        });
        assert_eq!(p.func_by_name("main"), Some(0));
        assert_eq!(p.func_by_name("f"), None);
        assert_eq!(p.loop_by_label("hot"), Some(0));
        assert_eq!(p.loop_by_label("cold"), None);
    }
}
