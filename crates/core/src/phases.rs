//! The pipeline split into explicit, independently cacheable phases.
//!
//! [`Analysis::from_source`] and [`Analysis::transform`] used to be
//! monolithic drives; this module factors them into one function per
//! phase — parse, lower, profile, classify, plan, xform — each returning
//! its artifact plus a [`PhaseSpan`]. The standalone driver composes them
//! directly (so single-process reuse is free), while [`Pipeline`] composes
//! them through a shared [`ArtifactStore`] keyed by content hashes:
//!
//! ```text
//! parse    key = H("parse", source)
//! lower    key = H("lower", ast_hash)             ast_hash    = H(printed AST)
//! profile  key = H("profile", code_hash, inputs)  code_hash   = H(disassembly)
//! classify key = H("classify", ast, code, prof)   prof_hash   = H(canonical DDG summary)
//! plan     key = H("plan", classify_key, opt, threads, baseline)
//! xform    key = H("xform", plan_key)
//! reglower key = H("reglower", code fingerprint)  (register-backend runs)
//! verify   key = H("verify", xform_key)           (dse-verify adds this layer)
//! regverify key = H("regverify", reglower_key)    (backend verification, dse-verify)
//! ```
//!
//! Downstream keys chain through *content* hashes of the upstream
//! artifacts, not through the raw source hash — that gives early cutoff: a
//! comment-only edit re-parses, rediscovers the same `ast_hash`, and every
//! later phase is a cache hit.

use crate::cache::{ArtifactStore, Trace};
use crate::classify::{classify_loop, LoopClassification};
use crate::plan::{ExpansionPlan, OptLevel};
use crate::{Analysis, DseError, Transformed};
use dse_depprof::ProfileResult;
use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_lang::ast::Program;
use dse_runtime::VmConfig;
use dse_telemetry::hash::{ContentHash, ContentHasher};
use dse_telemetry::{PhaseSpan, PhaseTimer};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the classify phase produces beyond the classifications
/// themselves: the points-to results and allocation-size facts the planner
/// consumes.
pub struct Classified {
    /// Per-candidate-loop classifications, parallel to the profile's loops.
    pub classifications: Vec<LoopClassification>,
    /// Points-to results.
    pub pt: dse_analysis::PointsTo,
    /// Allocation-size facts.
    pub alloc_sizes: HashMap<u32, dse_analysis::consteval::AllocSizeInfo>,
}

/// Phase 1: source text → typed AST.
///
/// # Errors
///
/// Propagates frontend errors.
pub fn parse_phase(source: &str) -> Result<(Program, PhaseSpan), DseError> {
    let mut timer = PhaseTimer::new();
    let program = timer.time("parse", || dse_lang::compile_to_ast(source))?;
    timer.stat("source_bytes", source.len() as i64);
    timer.stat("functions", program.functions.len() as i64);
    Ok((program, timer.into_spans().remove(0)))
}

/// Phase 2: typed AST → serial bytecode (with profiler loop marks).
///
/// # Errors
///
/// Propagates lowering errors.
pub fn lower_phase(program: &Program) -> Result<(CompiledProgram, PhaseSpan), DseError> {
    let mut timer = PhaseTimer::new();
    let serial = timer.time("lower", || {
        dse_ir::lower_program(program, &dse_ir::lower::LowerOptions::default())
    })?;
    timer.stat("instructions", serial.code.len() as i64);
    timer.stat("sites", serial.sites.len() as i64);
    timer.stat("candidate_loops", serial.loops.len() as i64);
    Ok((serial, timer.into_spans().remove(0)))
}

/// Phase 3: serial bytecode → per-loop dependence graphs, by running the
/// program under the profiler on the given inputs.
///
/// # Errors
///
/// Propagates VM errors.
pub fn profile_phase(
    serial: CompiledProgram,
    mut profile_config: VmConfig,
) -> Result<(ProfileResult, PhaseSpan), DseError> {
    // Profiles are measured on the reference stack encoding: per-loop
    // instruction counts feed classification and the simulator, and they
    // must not shift when `DSE_EXEC_BACKEND=reg` runs the same pipeline
    // (register fusion retires fewer, fatter instructions).
    profile_config.backend = dse_runtime::BackendKind::Stack;
    let mut timer = PhaseTimer::new();
    let (profile, _vm) = timer.time("profile", || {
        dse_depprof::profile_program(serial, profile_config)
    })?;
    timer.stat("loops_profiled", profile.loops.len() as i64);
    let (iterations, accesses, edges) = profile.totals();
    timer.stat("iterations", iterations as i64);
    timer.stat("accesses", accesses as i64);
    timer.stat("edges", edges as i64);
    Ok((profile, timer.into_spans().remove(0)))
}

/// Phase 4: profile → access-class classifications, plus the points-to and
/// allocation-size side analyses.
pub fn classify_phase(program: &Program, profile: &ProfileResult) -> (Classified, PhaseSpan) {
    let mut timer = PhaseTimer::new();
    let classified = timer.time("classify", || {
        let classifications: Vec<LoopClassification> =
            profile.loops.iter().map(classify_loop).collect();
        let pt = dse_analysis::analyze(program);
        let alloc_sizes = dse_analysis::consteval::alloc_size_infos(program);
        Classified {
            classifications,
            pt,
            alloc_sizes,
        }
    });
    timer.stat(
        "doall",
        classified
            .classifications
            .iter()
            .filter(|c| c.mode == ParMode::DoAll)
            .count() as i64,
    );
    timer.stat(
        "doacross",
        classified
            .classifications
            .iter()
            .filter(|c| c.mode == ParMode::DoAcross)
            .count() as i64,
    );
    (classified, timer.into_spans().remove(0))
}

/// Assembles an [`Analysis`] from the four analysis-phase artifacts.
pub fn assemble_analysis(
    program: Program,
    serial: CompiledProgram,
    profile: ProfileResult,
    classified: Classified,
    phases: Vec<PhaseSpan>,
) -> Analysis {
    Analysis {
        program,
        serial,
        profile,
        classifications: classified.classifications,
        pt: classified.pt,
        alloc_sizes: classified.alloc_sizes,
        phases,
    }
}

// ---------------------------------------------------------------------------
// content fingerprints
// ---------------------------------------------------------------------------

/// Content hash of a parsed program: its canonical printed form. Stable
/// across processes; insensitive to comments and whitespace in the source.
pub fn ast_fingerprint(program: &Program) -> ContentHash {
    ContentHasher::new("ast")
        .str(&dse_lang::printer::print_program(program))
        .finish()
}

/// Content hash of a lowered program: its disassembly plus the site and
/// candidate-loop table sizes.
pub fn code_fingerprint(serial: &CompiledProgram) -> ContentHash {
    ContentHasher::new("code")
        .str(&dse_ir::disasm::disassemble(serial))
        .u64(serial.sites.len() as u64)
        .u64(serial.loops.len() as u64)
        .finish()
}

/// Content hash of a dependence profile: its canonical sorted summary.
pub fn profile_fingerprint(profile: &ProfileResult) -> ContentHash {
    ContentHasher::new("profile-content")
        .str(&profile.canonical_summary())
        .finish()
}

// ---------------------------------------------------------------------------
// the cached pipeline
// ---------------------------------------------------------------------------

/// The parse artifact: the program plus its content fingerprint.
pub struct ParseArt {
    /// The typed AST.
    pub program: Program,
    /// Fingerprint of the printed AST (the lower key's input).
    pub ast_hash: ContentHash,
    /// The phase's original timing span.
    pub span: PhaseSpan,
}

/// The lower artifact.
pub struct LowerArt {
    /// Serial bytecode.
    pub serial: CompiledProgram,
    /// Fingerprint of the disassembly (the profile key's input).
    pub code_hash: ContentHash,
    /// The phase's original timing span.
    pub span: PhaseSpan,
}

/// The profile artifact.
pub struct ProfileArt {
    /// Per-loop dependence graphs.
    pub profile: ProfileResult,
    /// Fingerprint of the canonical profile summary.
    pub profile_hash: ContentHash,
    /// The phase's original timing span.
    pub span: PhaseSpan,
}

/// The classify artifact: the fully assembled [`Analysis`] (its `phases`
/// carry the original parse/lower/profile/classify spans) plus its chained
/// content key, which downstream plan/xform/verify keys build on.
pub struct AnalysisArt {
    /// The assembled analysis.
    pub analysis: Analysis,
    /// The classify phase's content key.
    pub key: ContentHash,
}

/// The plan artifact.
pub struct PlanArt {
    /// The expansion plan.
    pub plan: ExpansionPlan,
    /// The phase's original timing span.
    pub span: PhaseSpan,
}

/// The xform artifact: the transformed program plus its chained content
/// key (the verify key's input).
pub struct TransformArt {
    /// The transformed program (its `phases` carry plan and xform spans).
    pub transformed: Transformed,
    /// The xform phase's content key.
    pub key: ContentHash,
}

/// The reglower artifact: the register translation of one compiled
/// program (serial or transformed), shareable across every VM that
/// executes it.
pub struct RegArt {
    /// The translated register module.
    pub reg: Arc<dse_ir::RegProgram>,
    /// The phase's original timing span.
    pub span: PhaseSpan,
    /// The reglower phase's content key; the backend-verification phase
    /// (`regverify`, in `dse-verify`) chains its own key through this.
    pub key: ContentHash,
}

/// Drives the phase functions through a shared [`ArtifactStore`]. Requests
/// for identical content collapse onto one computation; edits only re-run
/// the phases downstream of the change.
pub struct Pipeline<'a> {
    store: &'a ArtifactStore,
}

impl<'a> Pipeline<'a> {
    /// A pipeline over the given store.
    pub fn new(store: &'a ArtifactStore) -> Pipeline<'a> {
        Pipeline { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &ArtifactStore {
        self.store
    }

    /// parse → lower → profile → classify, each through the cache.
    /// `profile_config` supplies the profiling inputs (which are part of
    /// the profile key).
    ///
    /// # Errors
    ///
    /// Propagates frontend, lowering and VM errors; failures are not
    /// cached.
    pub fn analyze(
        &self,
        source: &str,
        profile_config: &VmConfig,
        trace: &mut Trace,
    ) -> Result<Arc<AnalysisArt>, DseError> {
        let parse_key = ContentHasher::new("parse").str(source).finish();
        let parsed: Arc<ParseArt> = self.store.get_or_compute("parse", parse_key, trace, || {
            let (program, span) = parse_phase(source)?;
            let ast_hash = ast_fingerprint(&program);
            Ok::<_, DseError>(ParseArt {
                program,
                ast_hash,
                span,
            })
        })?;

        let lower_key = ContentHasher::new("lower").hash(parsed.ast_hash).finish();
        let lowered: Arc<LowerArt> =
            self.store.get_or_compute("lower", lower_key, trace, || {
                let (serial, span) = lower_phase(&parsed.program)?;
                let code_hash = code_fingerprint(&serial);
                Ok::<_, DseError>(LowerArt {
                    serial,
                    code_hash,
                    span,
                })
            })?;

        let profile_key = ContentHasher::new("profile")
            .hash(lowered.code_hash)
            .i64s(&profile_config.inputs_int)
            .f64s(&profile_config.inputs_float)
            .finish();
        let profiled: Arc<ProfileArt> =
            self.store
                .get_or_compute("profile", profile_key, trace, || {
                    let (profile, span) =
                        profile_phase(lowered.serial.clone(), profile_config.clone())?;
                    let profile_hash = profile_fingerprint(&profile);
                    Ok::<_, DseError>(ProfileArt {
                        profile,
                        profile_hash,
                        span,
                    })
                })?;

        let classify_key = ContentHasher::new("classify")
            .hash(parsed.ast_hash)
            .hash(lowered.code_hash)
            .hash(profiled.profile_hash)
            .finish();
        self.store
            .get_or_compute("classify", classify_key, trace, || {
                let (classified, span) = classify_phase(&parsed.program, &profiled.profile);
                let phases = vec![
                    parsed.span.clone(),
                    lowered.span.clone(),
                    profiled.span.clone(),
                    span,
                ];
                Ok::<_, DseError>(AnalysisArt {
                    analysis: assemble_analysis(
                        parsed.program.clone(),
                        lowered.serial.clone(),
                        profiled.profile.clone(),
                        classified,
                        phases,
                    ),
                    key: classify_key,
                })
            })
    }

    /// Stack→register translation of `program` through the cache, keyed
    /// by the program's content fingerprint — one artifact per distinct
    /// program, shared by the serial original and every transformed
    /// variant that hashes equal, and reused across daemon requests when
    /// the register backend executes.
    ///
    /// # Errors
    ///
    /// Propagates [`dse_ir::RegLowerError`] (hand-constructed bytecode
    /// whose stack discipline cannot be proven; lowered programs never
    /// fail).
    pub fn reglower(
        &self,
        program: &CompiledProgram,
        trace: &mut Trace,
    ) -> Result<Arc<RegArt>, DseError> {
        let key = ContentHasher::new("reglower")
            .hash(code_fingerprint(program))
            .finish();
        self.store.get_or_compute("reglower", key, trace, || {
            let mut timer = PhaseTimer::new();
            let reg = timer.time("reglower", || dse_ir::regcode::translate(program))?;
            timer.stat("reg_instructions", reg.code.len() as i64);
            timer.stat("frame_regs", reg.frame_regs as i64);
            timer.stat("entries", reg.entry_map.len() as i64);
            Ok::<_, DseError>(RegArt {
                reg: Arc::new(reg),
                span: timer.into_spans().remove(0),
                key,
            })
        })
    }

    /// plan → xform through the cache, on top of a cached analysis.
    /// `baseline` selects the runtime-privatization baseline plan.
    ///
    /// # Errors
    ///
    /// Propagates planning, transformation and lowering failures.
    pub fn transform(
        &self,
        art: &AnalysisArt,
        opt: OptLevel,
        nthreads: u32,
        baseline: bool,
        trace: &mut Trace,
    ) -> Result<Arc<TransformArt>, DseError> {
        let opt_name = match opt {
            OptLevel::None => "none",
            OptLevel::NoConstSpan => "noconst",
            OptLevel::Full => "full",
        };
        let plan_key = ContentHasher::new("plan")
            .hash(art.key)
            .str(opt_name)
            .u64(nthreads as u64)
            .bool(baseline)
            .finish();
        let planned: Arc<PlanArt> = self.store.get_or_compute("plan", plan_key, trace, || {
            let mut timer = PhaseTimer::new();
            let plan = timer.time("plan", || {
                if baseline {
                    art.analysis.baseline_plan(nthreads)
                } else {
                    art.analysis.plan(opt, nthreads)
                }
            })?;
            timer.stat("nthreads", nthreads as i64);
            Ok::<_, DseError>(PlanArt {
                plan,
                span: timer.into_spans().remove(0),
            })
        })?;

        // The baseline plan privatizes through the `__localize` runtime
        // regardless of `opt`; the transform itself then runs at full
        // optimization, exactly as the standalone baseline path always has.
        let apply_opt = if baseline { OptLevel::Full } else { opt };
        let xform_key = ContentHasher::new("xform").hash(plan_key).finish();
        self.store.get_or_compute("xform", xform_key, trace, || {
            let mut t = art.analysis.apply_plan(planned.plan.clone(), apply_opt)?;
            t.phases.insert(0, planned.span.clone());
            Ok::<_, DseError>(TransformArt {
                transformed: t,
                key: xform_key,
            })
        })
    }
}
