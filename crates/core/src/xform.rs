//! The data-structure-expansion transformation (paper Section 3).
//!
//! Consumes an [`ExpansionPlan`] and rewrites the typed AST:
//!
//! * **Type expansion** (Table 1): expanded locals become `T v[N]`;
//!   expanded globals are re-homed to heap blocks of `N` copies allocated
//!   in a `main` prologue (`__gp_v`), seeded from the original static
//!   initializer with `__memcpy`; expanded allocation sites multiply their
//!   size by `N` (`realloc` becomes `__realloc_expanded`, which moves each
//!   thread's copy).
//! * **Pointer promotion** (Section 3.3.1, Figures 5/6): pointer types in
//!   the plan's fat set grow a span. Memory-resident cells (struct fields,
//!   array elements, heap cells) become `struct __fat { T *ptr; long span; }`
//!   records; scalar variables keep a thin pointer plus a shadow
//!   `long __sp_<name>` (and functions gain shadow span parameters and a
//!   `__retspan` out-parameter — an ABI choice documented in DESIGN.md).
//! * **Span computation** (Table 3): a span assignment is inserted after
//!   every store to a promoted pointer, with the `p = p ± c` dead-store
//!   elision of Section 3.4.
//! * **Redirection** (Table 2): private direct accesses index copy
//!   `__tid()`; private indirect accesses offset the dereferenced pointer
//!   by `__tid() * span / sizeof(*p)`; shared accesses use copy 0 (which is
//!   the original storage).
//!
//! The transformed program is an ordinary Cee AST: it is re-checked by
//! `dse_lang::sema` (a strong internal-consistency gate) and can be lowered
//! with parallel options or run serially.

use crate::access::{access_root, AccessRoot};
use crate::plan::{ExpansionPlan, LayoutMode};
use dse_analysis::{PtObj, VarId};
use dse_lang::ast::*;
use dse_lang::types::{StructId, Type, TypeTable};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A transformation failure (unsupported shape) with explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XformError(pub String);

impl fmt::Display for XformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expansion transform error: {}", self.0)
    }
}

impl std::error::Error for XformError {}

/// Statistics for the report (Table 5 and DESIGN.md accounting).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpansionReport {
    /// Expanded heap allocation sites.
    pub expanded_allocs: usize,
    /// Expanded globals.
    pub expanded_globals: usize,
    /// Expanded aggregate locals (arrays/structs — "data structures").
    pub expanded_locals: usize,
    /// Expanded scalar locals (the classic scalar expansion of [4, 5] in
    /// the paper's related work; not counted as data structures).
    pub expanded_scalar_locals: usize,
    /// Promoted (fat) pointer types.
    pub fat_pointer_types: usize,
    /// Promoted span-carrying integers.
    pub fat_int_vars: usize,
    /// Private access sites redirected.
    pub private_accesses_redirected: usize,
    /// Span stores emitted (Table 3).
    pub span_stores_emitted: usize,
    /// Span stores elided by the `p = p ± c` rule (Section 3.4).
    pub span_stores_elided: usize,
}

impl ExpansionReport {
    /// Number of distinct data structures privatized — the Table 5 metric.
    /// Counts heap allocation sites, globals and aggregate locals; expanded
    /// scalars are classic scalar expansion and not "data structures".
    pub fn privatized_structures(&self) -> usize {
        self.expanded_allocs + self.expanded_globals + self.expanded_locals
    }

    /// The report in telemetry form (plain counters, for
    /// [`dse_telemetry::RunMetrics`]).
    pub fn telemetry_stats(&self) -> dse_telemetry::ExpansionStats {
        dse_telemetry::ExpansionStats {
            expanded_allocs: self.expanded_allocs as u64,
            expanded_globals: self.expanded_globals as u64,
            expanded_locals: self.expanded_locals as u64,
            expanded_scalar_locals: self.expanded_scalar_locals as u64,
            fat_pointer_types: self.fat_pointer_types as u64,
            fat_int_vars: self.fat_int_vars as u64,
            private_accesses_redirected: self.private_accesses_redirected as u64,
            span_stores_emitted: self.span_stores_emitted as u64,
            span_stores_elided: self.span_stores_elided as u64,
        }
    }
}

/// Result of the transformation.
#[derive(Debug, Clone)]
pub struct XformResult {
    /// The transformed, re-type-checked, renumbered program.
    pub program: Program,
    /// Per candidate-loop label: the DOACROSS `Wait`/`Post` window over
    /// *transformed* top-level body statement indices.
    pub sync_windows: HashMap<String, Option<(usize, usize)>>,
    /// Transformed expression id → originating expression id in the input
    /// program, for every rebuilt node that corresponds 1:1 to a source
    /// access or allocation. Synthesized bookkeeping nodes (span stores,
    /// copy indices, prologue code) have no entry.
    pub eid_provenance: HashMap<u32, u32>,
    /// Accounting.
    pub report: ExpansionReport,
}

/// Applies the expansion transformation.
///
/// `sync_eids` maps each parallelized loop label to the expression ids of
/// its shared loop-carried accesses (used to place the ordered section).
///
/// # Errors
///
/// Returns [`XformError`] for unsupported shapes (impure expressions where
/// span bookkeeping would double-evaluate them, span-carrying pointers in
/// positions the ABI cannot express, etc.). The transformed program is
/// re-checked by sema; any internal inconsistency surfaces as an error
/// here, not as miscompiled code.
pub fn expand_program(
    program: &Program,
    plan: &ExpansionPlan,
    sync_eids: &HashMap<String, HashSet<u32>>,
) -> Result<XformResult, XformError> {
    let tymap = TypeMap::build(&program.types, &plan.fat_types);
    let any_fat_ret = program.functions.iter().any(|f| plan.is_fat(&f.ret_ty));
    let mut xf = Xf {
        program,
        plan,
        tymap,
        cur_func: 0,
        any_fat_ret,
        sync_eids,
        sync_windows: HashMap::new(),
        cand_ordinal: 0,
        report: ExpansionReport::default(),
    };

    // ---- globals ----------------------------------------------------------
    let mut new_globals: Vec<GlobalVar> = Vec::new();
    for (gi, g) in program.globals.iter().enumerate() {
        let v = VarId::Global(gi);
        let mem_ty = xf.tymap.mem(&g.ty);
        if plan.var_expanded(v) {
            xf.report.expanded_globals += 1;
            if g.init.is_some() && mem_ty != xf.tymap.mem_unpromoted(&g.ty) {
                return Err(XformError(format!(
                    "global `{}` has an initializer but its layout changes under promotion",
                    g.name
                )));
            }
            // In-place expansion: N adjacent copies in the data segment
            // (Table 1's layout). The paper re-homes globals to the heap
            // because its N is a run-time value; ours is fixed at transform
            // time, so the data segment can hold the copies directly — see
            // DESIGN.md. The original initializer seeds copy 0; the other
            // copies are zero (private data is written before read).
            let (expanded_ty, init) = if xf.is_interleaved_array(v) {
                if g.init.is_some() {
                    return Err(XformError(format!(
                        "interleaved layout: initializer of global `{}` cannot be \
                         re-laid out element-wise",
                        g.name
                    )));
                }
                (xf.interleave_ty(&g.ty), None)
            } else {
                (
                    mem_ty.clone().array_of(plan.nthreads as u64),
                    g.init.clone().map(|i| ConstInit::List(vec![i])),
                )
            };
            new_globals.push(GlobalVar {
                name: g.name.clone(),
                ty: expanded_ty,
                init,
                span: g.span,
            });
            if plan.fat_ints.contains(&v) {
                xf.report.fat_int_vars += 1;
                new_globals.push(GlobalVar {
                    name: sp_name(&g.name),
                    ty: Type::Long.array_of(plan.nthreads as u64),
                    init: None,
                    span: g.span,
                });
            }
        } else {
            let var_ty = xf.tymap.var(&g.ty);
            new_globals.push(GlobalVar {
                name: g.name.clone(),
                ty: var_ty,
                init: g.init.clone(),
                span: g.span,
            });
            if plan.is_fat(&g.ty) {
                new_globals.push(GlobalVar {
                    name: sp_name(&g.name),
                    ty: Type::Long,
                    init: None,
                    span: g.span,
                });
            }
            if plan.fat_ints.contains(&v) {
                xf.report.fat_int_vars += 1;
                new_globals.push(GlobalVar {
                    name: sp_name(&g.name),
                    ty: Type::Long,
                    init: None,
                    span: g.span,
                });
            }
        }
    }

    // ---- functions ---------------------------------------------------------
    let mut new_functions = Vec::with_capacity(program.functions.len());
    for (fi, f) in program.functions.iter().enumerate() {
        xf.cur_func = fi;
        let mut params: Vec<Param> = f
            .params
            .iter()
            .map(|p| Param {
                name: p.name.clone(),
                ty: xf.tymap.var(&p.ty),
                span: p.span,
            })
            .collect();
        for p in &f.params {
            if plan.is_fat(&p.ty) {
                params.push(Param {
                    name: sp_name(&p.name),
                    ty: Type::Long,
                    span: p.span,
                });
            }
        }
        let ret_fat = plan.is_fat(&f.ret_ty);
        if ret_fat {
            params.push(Param {
                name: "__retspan".into(),
                ty: Type::Long.ptr_to(),
                span: f.span,
            });
        }
        let mut body = xf.rewrite_block(&f.body)?;
        if xf.any_fat_ret {
            // Scratch span receiver for calls whose span result is unused.
            // Expanded per thread: it lives in a shared frame.
            body.stmts.insert(
                0,
                Stmt {
                    kind: StmtKind::Decl {
                        name: "__dspan".into(),
                        ty: Type::Long.array_of(plan.nthreads as u64),
                        init: None,
                        slot: None,
                    },
                    span: f.span,
                },
            );
        }
        new_functions.push(Function {
            name: f.name.clone(),
            ret_ty: xf.tymap.var(&f.ret_ty),
            params,
            body,
            locals: Vec::new(),
            span: f.span,
        });
    }

    let mut out = Program {
        types: xf.tymap.table.clone(),
        globals: new_globals,
        functions: new_functions,
    };
    xf.report.expanded_allocs = plan
        .expanded
        .iter()
        .filter(|o| matches!(o, PtObj::Alloc(_)))
        .count();
    for o in &plan.expanded {
        if let PtObj::Var(VarId::Local(fi, slot)) = o {
            let ty = &program.functions[*fi].locals[*slot].ty;
            if ty.is_aggregate() || ty.is_pointer() {
                // Pointer locals stand for the dynamic structures they
                // carry across statements (e.g. a rebuilt list head).
                xf.report.expanded_locals += 1;
            } else {
                xf.report.expanded_scalar_locals += 1;
            }
        }
    }
    xf.report.fat_pointer_types = plan.fat_types.len();
    let report = xf.report.clone();
    let sync_windows = xf.sync_windows.clone();

    // Internal consistency gate: the transformed program must type-check.
    dse_lang::sema::check(&mut out)
        .map_err(|e| XformError(format!("transformed program failed sema: {e}")))?;
    // Rebuilt access nodes still carry their *source* eids (stamped by the
    // rewriter); collect them in the exact order `number_exprs` visits so
    // the renumbered ids can be paired back to their origins.
    let mut source_eids = Vec::new();
    for f in &mut out.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| source_eids.push(e.eid));
    }
    dse_lang::ast::number_exprs(&mut out);
    let eid_provenance: HashMap<u32, u32> = source_eids
        .iter()
        .enumerate()
        .filter(|&(_, &old)| old != NO_EID)
        .map(|(new, &old)| (new as u32, old))
        .collect();
    Ok(XformResult {
        program: out,
        sync_windows,
        eid_provenance,
        report,
    })
}

// ---------------------------------------------------------------------------
// type mapping
// ---------------------------------------------------------------------------

/// Maps original types to promoted types over a fresh [`TypeTable`].
struct TypeMap {
    table: TypeTable,
    struct_map: HashMap<StructId, StructId>,
    fat_map: HashMap<Type, StructId>,
    fat_types: HashSet<Type>,
}

impl TypeMap {
    fn build(orig: &TypeTable, fat: &HashSet<Type>) -> TypeMap {
        let mut tm = TypeMap {
            table: TypeTable::new(),
            struct_map: HashMap::new(),
            fat_map: HashMap::new(),
            fat_types: fat.clone(),
        };
        // Declare all original structs first so pointer fields can refer to
        // them (including self-references).
        for s in orig.structs() {
            let id = tm.table.declare_struct(s.name.clone());
            tm.struct_map
                .insert(StructId(tm.struct_map.len() as u32), id);
        }
        for (i, s) in orig.structs().iter().enumerate() {
            let fields = s
                .fields
                .iter()
                .map(|f| (f.name.clone(), tm.mem(&f.ty)))
                .collect();
            let new_id = tm.struct_map[&StructId(i as u32)];
            tm.table
                .complete_struct(new_id, fields)
                .expect("original structs are finite");
        }
        tm
    }

    /// The promoted type as stored in memory (fat cells become structs).
    fn mem(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Pointer(inner) => {
                if self.fat_types.contains(ty) {
                    Type::Struct(self.fat_struct(ty))
                } else {
                    self.mem(inner).ptr_to()
                }
            }
            Type::Array(elem, n) => self.mem(elem).array_of(*n),
            Type::Struct(id) => Type::Struct(self.struct_map[id]),
            prim => prim.clone(),
        }
    }

    /// The promoted type ignoring fatness entirely (used to detect layout
    /// changes for initialized globals).
    fn mem_unpromoted(&self, ty: &Type) -> Type {
        match ty {
            Type::Pointer(inner) => self.mem_unpromoted(inner).ptr_to(),
            Type::Array(elem, n) => self.mem_unpromoted(elem).array_of(*n),
            Type::Struct(id) => Type::Struct(self.struct_map[id]),
            prim => prim.clone(),
        }
    }

    /// The promoted type for a scalar variable/parameter declaration: fat
    /// pointers stay thin here (span lives in a shadow variable).
    fn var(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Pointer(inner) => self.mem(inner).ptr_to(),
            other => self.mem(other),
        }
    }

    /// The fat record for an original pointer type.
    fn fat_struct(&mut self, ptr_ty: &Type) -> StructId {
        if let Some(&id) = self.fat_map.get(ptr_ty) {
            return id;
        }
        let Type::Pointer(inner) = ptr_ty else {
            unreachable!("fat types are pointer types");
        };
        let name = format!("__fat_{}", self.fat_map.len());
        let id = self.table.declare_struct(name);
        self.fat_map.insert(ptr_ty.clone(), id);
        let ptr_field_ty = self.mem(inner).ptr_to();
        self.table
            .complete_struct(
                id,
                vec![("ptr".into(), ptr_field_ty), ("span".into(), Type::Long)],
            )
            .expect("fat records cannot embed themselves");
        id
    }
}

// ---------------------------------------------------------------------------
// expression builders (untyped; sema re-types the output program)
// ---------------------------------------------------------------------------

fn u(kind: ExprKind) -> Expr {
    Expr::new(kind, dse_lang::SourceSpan::default())
}

fn var(name: &str) -> Expr {
    u(ExprKind::Var {
        name: name.into(),
        binding: None,
    })
}

fn ilit(v: i64) -> Expr {
    u(ExprKind::IntLit(v))
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    u(ExprKind::Call {
        name: name.into(),
        args,
    })
}

fn tid() -> Expr {
    call("__tid", vec![])
}

fn idx(base: Expr, i: Expr) -> Expr {
    u(ExprKind::Index {
        base: Box::new(base),
        index: Box::new(i),
    })
}

fn fld(base: Expr, f: &str) -> Expr {
    u(ExprKind::Field {
        base: Box::new(base),
        field: f.into(),
    })
}

fn deref(p: Expr) -> Expr {
    u(ExprKind::Deref(Box::new(p)))
}

fn addrof(e: Expr) -> Expr {
    u(ExprKind::AddrOf(Box::new(e)))
}

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    u(ExprKind::Binary(op, Box::new(l), Box::new(r)))
}

fn mul(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Mul, l, r)
}

fn assign(lhs: Expr, rhs: Expr) -> Expr {
    u(ExprKind::Assign {
        op: AssignOp::Set,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    })
}

fn sizeof_ty(t: Type) -> Expr {
    u(ExprKind::SizeofType(t))
}

fn estmt(e: Expr) -> Stmt {
    Stmt {
        kind: StmtKind::Expr(e),
        span: dse_lang::SourceSpan::default(),
    }
}

fn decl(name: &str, ty: Type, init: Option<Expr>) -> Stmt {
    Stmt {
        kind: StmtKind::Decl {
            name: name.into(),
            ty,
            init,
            slot: None,
        },
        span: dse_lang::SourceSpan::default(),
    }
}

fn sp_name(name: &str) -> String {
    format!("__sp_{name}")
}

/// Carries the source node's expression id and span onto a rebuilt node, so
/// transformed sites can be mapped back to the original access (consumed by
/// the `dse-verify` invariant checker after renumbering) and diagnostics
/// point at real source locations.
fn stamp(mut e: Expr, src: &Expr) -> Expr {
    e.eid = src.eid;
    e.span = src.span;
    e
}

// ---------------------------------------------------------------------------
// the rewriter
// ---------------------------------------------------------------------------

struct Xf<'a> {
    program: &'a Program,
    plan: &'a ExpansionPlan,
    tymap: TypeMap,
    cur_func: usize,
    any_fat_ret: bool,
    sync_eids: &'a HashMap<String, HashSet<u32>>,
    sync_windows: HashMap<String, Option<(usize, usize)>>,
    /// Running candidate ordinal, matching the discovery walk in
    /// `dse_ir::loops` so synthesized labels line up.
    cand_ordinal: usize,
    report: ExpansionReport,
}

impl<'a> Xf<'a> {
    fn err(&self, msg: impl Into<String>) -> XformError {
        XformError(msg.into())
    }

    fn var_id(&self, b: VarBinding) -> VarId {
        match b {
            VarBinding::Global(g) => VarId::Global(g),
            VarBinding::Local(s) => VarId::Local(self.cur_func, s),
        }
    }

    fn var_name(&self, v: VarId) -> &str {
        match v {
            VarId::Global(g) => &self.program.globals[g].name,
            VarId::Local(f, s) => &self.program.functions[f].locals[s].name,
        }
    }

    fn var_ty(&self, v: VarId) -> &Type {
        match v {
            VarId::Global(g) => &self.program.globals[g].ty,
            VarId::Local(f, s) => &self.program.functions[f].locals[s].ty,
        }
    }

    fn is_private(&self, eid: u32) -> bool {
        self.plan.private_eids.contains(&eid)
    }

    /// True when `v` is an expanded *array* under the interleaved layout
    /// (its copy index goes innermost: `v[i][tid]`).
    fn is_interleaved_array(&self, v: VarId) -> bool {
        self.plan.layout == LayoutMode::Interleaved
            && self.plan.var_expanded(v)
            && matches!(self.var_ty(v), Type::Array(..))
    }

    /// The interleaved memory type: each innermost element replicated N
    /// times (`T v[n]` -> `T v[n][N]`).
    fn interleave_ty(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Array(elem, n) => self.interleave_ty(elem).array_of(*n),
            prim => self.tymap.mem(prim).array_of(self.plan.nthreads as u64),
        }
    }

    /// Copy index for the access with the given eid: `__tid()` for private
    /// accesses, 0 for shared ones.
    fn copy_index(&mut self, eid: u32) -> Expr {
        if self.is_private(eid) {
            self.report.private_accesses_redirected += 1;
            tid()
        } else {
            ilit(0)
        }
    }

    // ---- statements --------------------------------------------------------

    fn rewrite_block(&mut self, b: &Block) -> Result<Block, XformError> {
        let mut stmts = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            stmts.extend(self.rewrite_stmt(s)?);
        }
        Ok(Block { stmts })
    }

    fn rewrite_stmt(&mut self, s: &Stmt) -> Result<Vec<Stmt>, XformError> {
        let span = s.span;
        Ok(match &s.kind {
            StmtKind::Decl {
                name,
                ty,
                init,
                slot,
            } => {
                let v = VarId::Local(self.cur_func, slot.expect("typed AST"));
                let is_fat_ptr = self.plan.is_fat(ty);
                let mut out = Vec::new();
                if self.plan.var_expanded(v) {
                    let expanded_ty = if self.is_interleaved_array(v) {
                        let orig = self.var_ty(v).clone();
                        self.interleave_ty(&orig)
                    } else {
                        self.tymap.mem(ty).array_of(self.plan.nthreads as u64)
                    };
                    out.push(Stmt {
                        kind: StmtKind::Decl {
                            name: name.clone(),
                            ty: expanded_ty,
                            init: None,
                            slot: None,
                        },
                        span,
                    });
                    if self.plan.fat_ints.contains(&v) {
                        // Expanded difference integer: its span is per-copy.
                        self.report.fat_int_vars += 1;
                        out.push(Stmt {
                            kind: StmtKind::Decl {
                                name: sp_name(name),
                                ty: Type::Long.array_of(self.plan.nthreads as u64),
                                init: None,
                                slot: None,
                            },
                            span,
                        });
                    }
                    if let Some(init) = init {
                        let k = self.copy_index(init.eid);
                        // The decl-init store site is keyed by the
                        // initializer's eid in both programs.
                        let lv_cell = stamp(idx(var(name), k), init);
                        if is_fat_ptr {
                            out.extend(self.emit_ptr_assign_cell(lv_cell, init)?);
                        } else if ty.is_aggregate() {
                            return Err(self.err(format!(
                                "expanded aggregate `{name}` cannot have an initializer"
                            )));
                        } else if self.plan.fat_ints.contains(&v) {
                            // `long d = p - q;` on an expanded difference
                            // integer: the span cell must be written too.
                            let mut lhs = Expr::typed(
                                ExprKind::Var {
                                    name: name.clone(),
                                    binding: Some(VarBinding::Local(slot.expect("typed AST"))),
                                },
                                ty.clone(),
                            );
                            lhs.eid = init.eid;
                            out.extend(self.emit_int_diff_assign(&lhs, init)?);
                        } else {
                            let rhs = self.rewrite_expr(init)?;
                            out.push(estmt(assign(lv_cell, rhs)));
                        }
                    }
                } else if is_fat_ptr {
                    out.push(Stmt {
                        kind: StmtKind::Decl {
                            name: name.clone(),
                            ty: self.tymap.var(ty),
                            init: None,
                            slot: None,
                        },
                        span,
                    });
                    out.push(Stmt {
                        kind: StmtKind::Decl {
                            name: sp_name(name),
                            ty: Type::Long,
                            init: None,
                            slot: None,
                        },
                        span,
                    });
                    if let Some(init) = init {
                        out.extend(self.emit_ptr_assign_var(name, init)?);
                    }
                } else {
                    let is_fat_int = self.plan.fat_ints.contains(&v);
                    if is_fat_int {
                        self.report.fat_int_vars += 1;
                        out.push(Stmt {
                            kind: StmtKind::Decl {
                                name: sp_name(name),
                                ty: Type::Long,
                                init: None,
                                slot: None,
                            },
                            span,
                        });
                    }
                    if is_fat_int && init.is_some() {
                        // `long d = p - q;` must also store d's span
                        // (Table 3 "Pointer arithmetic 2"): desugar into a
                        // declaration plus the span-maintaining assignment.
                        out.push(Stmt {
                            kind: StmtKind::Decl {
                                name: name.clone(),
                                ty: self.tymap.var(ty),
                                init: None,
                                slot: None,
                            },
                            span,
                        });
                        let init = init.as_ref().expect("checked above");
                        let mut lhs = Expr::typed(
                            ExprKind::Var {
                                name: name.clone(),
                                binding: Some(VarBinding::Local(slot.expect("typed AST"))),
                            },
                            ty.clone(),
                        );
                        lhs.eid = init.eid;
                        out.extend(self.emit_int_diff_assign(&lhs, init)?);
                    } else {
                        let init = init.as_ref().map(|e| self.rewrite_expr(e)).transpose()?;
                        out.push(Stmt {
                            kind: StmtKind::Decl {
                                name: name.clone(),
                                ty: self.tymap.var(ty),
                                init,
                                slot: None,
                            },
                            span,
                        });
                    }
                }
                out
            }
            StmtKind::Expr(e) => self.rewrite_expr_stmt(e)?,
            StmtKind::If { cond, then, els } => vec![Stmt {
                kind: StmtKind::If {
                    cond: self.rewrite_expr(cond)?,
                    then: self.rewrite_block(then)?,
                    els: els.as_ref().map(|b| self.rewrite_block(b)).transpose()?,
                },
                span,
            }],
            StmtKind::While { cond, body, mark } => vec![Stmt {
                kind: StmtKind::While {
                    cond: self.rewrite_expr(cond)?,
                    body: self.rewrite_block(body)?,
                    mark: mark.clone(),
                },
                span,
            }],
            StmtKind::DoWhile { body, cond, mark } => vec![Stmt {
                kind: StmtKind::DoWhile {
                    body: self.rewrite_block(body)?,
                    cond: self.rewrite_expr(cond)?,
                    mark: mark.clone(),
                },
                span,
            }],
            StmtKind::For {
                init,
                cond,
                step,
                body,
                mark,
            } => {
                // An expanded/promoted loop variable splits the init into
                // several statements; hoist them into a wrapping block (not
                // allowed for candidate loops, whose induction variable is
                // excluded from expansion by the plan).
                let mut hoisted: Vec<Stmt> = Vec::new();
                let init = match init {
                    Some(i) => {
                        let mut stmts = self.rewrite_stmt(i)?;
                        if stmts.len() == 1 {
                            Some(Box::new(stmts.remove(0)))
                        } else if mark.candidate {
                            return Err(self.err(
                                "candidate loop init must stay a single statement \
                                 (the induction variable cannot be promoted or expanded)",
                            ));
                        } else {
                            hoisted = stmts;
                            None
                        }
                    }
                    None => None,
                };
                let cond = cond.as_ref().map(|c| self.rewrite_expr(c)).transpose()?;
                let step = match step {
                    Some(st) => {
                        let mut stmts = self.rewrite_expr_stmt(st)?;
                        if stmts.len() != 1 {
                            return Err(self.err(
                                "span-carrying pointer update in a for-step is not \
                                 supported; move it into the loop body",
                            ));
                        }
                        let Stmt {
                            kind: StmtKind::Expr(e),
                            ..
                        } = stmts.remove(0)
                        else {
                            return Err(self.err("for-step must remain an expression"));
                        };
                        Some(e)
                    }
                    None => None,
                };
                let body = if mark.candidate {
                    self.rewrite_candidate_body(mark, body)?
                } else {
                    self.rewrite_block(body)?
                };
                let for_stmt = Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                        mark: mark.clone(),
                    },
                    span,
                };
                if hoisted.is_empty() {
                    vec![for_stmt]
                } else {
                    hoisted.push(for_stmt);
                    vec![Stmt {
                        kind: StmtKind::Block(Block { stmts: hoisted }),
                        span,
                    }]
                }
            }
            StmtKind::Break => vec![Stmt {
                kind: StmtKind::Break,
                span,
            }],
            StmtKind::Continue => vec![Stmt {
                kind: StmtKind::Continue,
                span,
            }],
            StmtKind::Return(e) => {
                let ret_ty = self.program.functions[self.cur_func].ret_ty.clone();
                let mut out = Vec::new();
                if let Some(e) = e {
                    if self.plan.is_fat(&ret_ty) {
                        let sp = self.span_of(e)?;
                        let sp = match sp {
                            SpanVal::Expr(x) => x,
                            SpanVal::FromCallee => {
                                return Err(self.err(
                                    "returning a call result directly through a fat return \
                                     is not supported; assign it to a local first",
                                ))
                            }
                        };
                        out.push(estmt(assign(deref(var("__retspan")), sp)));
                    }
                    let e = self.rewrite_expr(e)?;
                    out.push(Stmt {
                        kind: StmtKind::Return(Some(e)),
                        span,
                    });
                } else {
                    out.push(Stmt {
                        kind: StmtKind::Return(None),
                        span,
                    });
                }
                out
            }
            StmtKind::Block(b) => vec![Stmt {
                kind: StmtKind::Block(self.rewrite_block(b)?),
                span,
            }],
        })
    }

    /// Rewrites a candidate loop body, tracking the statement-index mapping
    /// so DOACROSS sync windows survive statement splitting.
    fn rewrite_candidate_body(
        &mut self,
        mark: &LoopMark,
        body: &Block,
    ) -> Result<Block, XformError> {
        let ordinal = self.cand_ordinal;
        self.cand_ordinal += 1;
        let label = mark
            .label
            .clone()
            .unwrap_or_else(|| format!("{}#{ordinal}", self.program.functions[self.cur_func].name));
        let sync_set = self.sync_eids.get(&label);
        let mut stmts = Vec::new();
        let mut first: Option<usize> = None;
        let mut last: Option<usize> = None;
        for orig in &body.stmts {
            let start = stmts.len();
            stmts.extend(self.rewrite_stmt(orig)?);
            let end = stmts.len();
            if let Some(set) = sync_set {
                if stmt_mentions_eids(orig, set) {
                    if first.is_none() {
                        first = Some(start);
                    }
                    last = Some(end.saturating_sub(1).max(start));
                }
            }
        }
        if let Some(set) = sync_set {
            let window = match (first, last) {
                (Some(f), Some(l)) => Some((f, l)),
                // Sync sites exist but none found in the direct body (they
                // hide in callees): order the whole body.
                _ if !set.is_empty() && !stmts.is_empty() => Some((0, stmts.len() - 1)),
                _ => None,
            };
            self.sync_windows.insert(label, window);
        }
        Ok(Block { stmts })
    }

    /// Rewrites an expression statement, splitting span-carrying pointer
    /// assignments into multiple statements.
    fn rewrite_expr_stmt(&mut self, e: &Expr) -> Result<Vec<Stmt>, XformError> {
        if let ExprKind::Assign {
            op: AssignOp::Set,
            lhs,
            rhs,
        } = &e.kind
        {
            let lt = lhs.ty().decayed();
            // Span-carrying pointer destinations.
            if lt.is_pointer() && self.dst_carries_span(lhs) {
                return self.emit_ptr_assign(lhs, rhs);
            }
            // Promoted pointer-difference integers: i = p - q.
            if lt.is_integer() {
                if let ExprKind::Var {
                    binding: Some(b), ..
                } = &lhs.kind
                {
                    let v = self.var_id(*b);
                    if self.plan.fat_ints.contains(&v) {
                        return self.emit_int_diff_assign(lhs, rhs);
                    }
                }
            }
            // Plain or thin-pointer assignment.
            let l = self.rewrite_expr(lhs)?;
            let r = self.rewrite_expr(rhs)?;
            return Ok(vec![estmt(assign(l, r))]);
        }
        Ok(vec![estmt(self.rewrite_expr(e)?)])
    }

    /// Does storing to this lvalue require a span update? True when the
    /// destination is a fat scalar variable, an expanded fat variable, or a
    /// fat memory cell.
    fn dst_carries_span(&self, lhs: &Expr) -> bool {
        let ty = lhs.ty();
        if !self.plan.is_fat(&ty.decayed()) {
            return false;
        }
        true
    }

    /// `i = p - q` for a promoted difference integer: also set its span
    /// (Table 3 "Pointer arithmetic 2").
    fn emit_int_diff_assign(&mut self, lhs: &Expr, rhs: &Expr) -> Result<Vec<Stmt>, XformError> {
        let ExprKind::Var { name, .. } = &lhs.kind else {
            return Err(self.err("promoted difference integers must be plain variables"));
        };
        let ExprKind::Binary(BinOp::Sub, p, q) = &rhs.kind else {
            return Err(self.err(format!(
                "promoted integer `{name}` may only be assigned pointer differences"
            )));
        };
        let sp_p = self.span_expr(p)?;
        let sp_q = self.span_expr(q)?;
        let span_place = self.fat_int_span_place(lhs);
        let value_place = self.rewrite_place(lhs)?;
        let r = self.rewrite_expr(rhs)?;
        self.report.span_stores_emitted += 1;
        Ok(vec![
            estmt(assign(value_place, r)),
            estmt(assign(span_place, bin(BinOp::Sub, sp_p, sp_q))),
        ])
    }

    // ---- pointer assignments with spans (Table 3) ---------------------------

    /// Assignment into a fat destination given as an original lvalue.
    fn emit_ptr_assign(&mut self, lhs: &Expr, rhs: &Expr) -> Result<Vec<Stmt>, XformError> {
        // Fat scalar variable (thin repr + shadow)?
        if let ExprKind::Var {
            binding: Some(b),
            name,
            ..
        } = &lhs.kind
        {
            let v = self.var_id(*b);
            if !self.plan.var_expanded(v) {
                return self.emit_ptr_assign_var(name, rhs);
            }
        }
        // Otherwise the destination is a fat memory cell.
        if !lvalue_is_pure(lhs) {
            return Err(
                self.err("store to a fat pointer cell with side-effecting address expression")
            );
        }
        let cell = self.rewrite_place(lhs)?;
        self.emit_ptr_assign_cell(cell, rhs)
    }

    /// `p = rhs` where `p` is a fat scalar variable with shadow span.
    ///
    /// The span is computed into a scoped temporary *before* the pointer is
    /// updated, because the span expression may read the destination (e.g.
    /// `p = p->next` reads `p`'s span for the redirection offset).
    fn emit_ptr_assign_var(&mut self, name: &str, rhs: &Expr) -> Result<Vec<Stmt>, XformError> {
        if self.plan.elide_same_pointer_span_stores && span_preserving_self_update(rhs, name) {
            self.report.span_stores_elided += 1;
            let r = self.rewrite_expr(rhs)?;
            return Ok(vec![estmt(assign(var(name), r))]);
        }
        let n = self.plan.nthreads as u64;
        match self.span_of(rhs)? {
            SpanVal::Expr(sp) => {
                let r = self.rewrite_expr(rhs)?;
                self.report.span_stores_emitted += 1;
                // The temporary is expanded (one slot per thread): it lives
                // in the enclosing function's shared frame, so a plain
                // scalar would race when this assignment executes inside a
                // parallel loop body.
                Ok(vec![Stmt {
                    kind: StmtKind::Block(Block {
                        stmts: vec![
                            decl("__pa_s", Type::Long.array_of(n), None),
                            estmt(assign(idx(var("__pa_s"), tid()), sp)),
                            estmt(assign(var(name), r)),
                            estmt(assign(var(&sp_name(name)), idx(var("__pa_s"), tid()))),
                        ],
                    }),
                    span: dse_lang::SourceSpan::default(),
                }])
            }
            SpanVal::FromCallee => {
                // p = f(...): pass &__sp_p as the span out-parameter (the
                // call evaluates its arguments before writing anything).
                let callexpr = self.rewrite_call_with_retspan(rhs, addrof(var(&sp_name(name))))?;
                self.report.span_stores_emitted += 1;
                Ok(vec![estmt(assign(var(name), callexpr))])
            }
        }
    }

    /// `cell = rhs` where `cell` is an already-rewritten fat record place.
    ///
    /// Both the pointer and span values are computed into scoped
    /// temporaries before either field is written: the right-hand side may
    /// read the destination (`head = head->next`).
    fn emit_ptr_assign_cell(&mut self, cell: Expr, rhs: &Expr) -> Result<Vec<Stmt>, XformError> {
        let ptr_ty = {
            let t = rhs.ty().decayed();
            let pointee = t.pointee().cloned().unwrap_or(Type::Void);
            self.tymap.mem(&pointee).ptr_to()
        };
        let n = self.plan.nthreads as u64;
        self.report.span_stores_emitted += 1;
        // Both temporaries are expanded (one slot per thread): they live in
        // the enclosing function's shared frame and would otherwise race
        // across workers.
        match self.span_of(rhs)? {
            SpanVal::Expr(sp) => {
                let r = self.rewrite_expr(rhs)?;
                Ok(vec![Stmt {
                    kind: StmtKind::Block(Block {
                        stmts: vec![
                            decl("__pa_t", ptr_ty.array_of(n), None),
                            decl("__pa_s", Type::Long.array_of(n), None),
                            estmt(assign(idx(var("__pa_t"), tid()), r)),
                            estmt(assign(idx(var("__pa_s"), tid()), sp)),
                            // The `.ptr` store is the site that replaces the
                            // original assignment's store; the `.span` store
                            // is pure bookkeeping and stays synthetic.
                            estmt(assign(
                                stamp(fld(cell.clone(), "ptr"), &cell),
                                idx(var("__pa_t"), tid()),
                            )),
                            estmt(assign(fld(cell, "span"), idx(var("__pa_s"), tid()))),
                        ],
                    }),
                    span: dse_lang::SourceSpan::default(),
                }])
            }
            SpanVal::FromCallee => {
                let callexpr =
                    self.rewrite_call_with_retspan(rhs, addrof(idx(var("__pa_s"), tid())))?;
                Ok(vec![Stmt {
                    kind: StmtKind::Block(Block {
                        stmts: vec![
                            decl("__pa_s", Type::Long.array_of(n), None),
                            decl("__pa_t", ptr_ty.array_of(n), None),
                            estmt(assign(idx(var("__pa_t"), tid()), callexpr)),
                            estmt(assign(
                                stamp(fld(cell.clone(), "ptr"), &cell),
                                idx(var("__pa_t"), tid()),
                            )),
                            estmt(assign(fld(cell, "span"), idx(var("__pa_s"), tid()))),
                        ],
                    }),
                    span: dse_lang::SourceSpan::default(),
                }])
            }
        }
    }

    /// Rewrites a user call expression appending the given span receiver.
    fn rewrite_call_with_retspan(&mut self, e: &Expr, retspan: Expr) -> Result<Expr, XformError> {
        let rewritten = self.rewrite_expr(e)?;
        let ExprKind::Call { name, mut args } = rewritten.kind else {
            return Err(self.err("span-from-callee requires a direct call"));
        };
        // rewrite_expr appended a discard receiver; replace it.
        let last = args.last_mut().expect("fat-return calls have a receiver");
        *last = retspan;
        Ok(u(ExprKind::Call { name, args }))
    }

    // ---- span computation (Table 3) -----------------------------------------

    /// The span value of a pointer-producing expression.
    fn span_of(&mut self, e: &Expr) -> Result<SpanVal, XformError> {
        match &e.kind {
            ExprKind::IntLit(0) => Ok(SpanVal::Expr(ilit(0))),
            ExprKind::Call { name, args } => match name.as_str() {
                // Table 3 "Memory allocation": span is the per-copy size.
                "malloc" => {
                    let a = &args[0];
                    if !dse_ir::loops::expr_is_pure(a) {
                        return Err(
                            self.err("allocation size with side effects cannot be used as a span")
                        );
                    }
                    Ok(SpanVal::Expr(self.rewrite_expr(a)?))
                }
                "calloc" => {
                    for a in args {
                        if !dse_ir::loops::expr_is_pure(a) {
                            return Err(self.err(
                                "allocation size with side effects cannot be used as a span",
                            ));
                        }
                    }
                    let n = self.rewrite_expr(&args[0])?;
                    let m = self.rewrite_expr(&args[1])?;
                    Ok(SpanVal::Expr(mul(n, m)))
                }
                "realloc" => {
                    let a = &args[1];
                    if !dse_ir::loops::expr_is_pure(a) {
                        return Err(
                            self.err("allocation size with side effects cannot be used as a span")
                        );
                    }
                    Ok(SpanVal::Expr(self.rewrite_expr(a)?))
                }
                _ => {
                    // User function returning a fat pointer.
                    Ok(SpanVal::FromCallee)
                }
            },
            // Table 3 "Address taken": the span is the size of the whole
            // named object (its copies are that far apart).
            ExprKind::AddrOf(inner) => match access_root(inner) {
                Some(AccessRoot::Direct(b)) => {
                    let v = self.var_id(b);
                    let t = self.tymap.mem(&self.var_ty(v).clone());
                    Ok(SpanVal::Expr(sizeof_ty(t)))
                }
                Some(AccessRoot::Indirect(base)) => {
                    // &p->f / &p[i]: same structure as p — same span.
                    let sp = self.span_expr(base)?;
                    Ok(SpanVal::Expr(sp))
                }
                None => Err(self.err("cannot compute span of address expression")),
            },
            // Table 3 "Pointer assignment" and arithmetic: copy the span.
            ExprKind::Cast(_, inner) => self.span_of(inner),
            ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
                let (ptr_side, int_side) = if l.ty().decayed().is_pointer() {
                    (l, r)
                } else {
                    (r, l)
                };
                let base = self.span_expr(ptr_side)?;
                // Table 3 "Pointer arithmetic 3": adjust by a promoted
                // integer's span when one is involved.
                if let ExprKind::Var {
                    binding: Some(b), ..
                } = &int_side.kind
                {
                    let v = self.var_id(*b);
                    if self.plan.fat_ints.contains(&v) {
                        let op = if matches!(e.kind, ExprKind::Binary(BinOp::Add, ..)) {
                            BinOp::Add
                        } else {
                            BinOp::Sub
                        };
                        let sp = self.fat_int_span_place(int_side);
                        return Ok(SpanVal::Expr(bin(op, base, sp)));
                    }
                }
                Ok(SpanVal::Expr(base))
            }
            ExprKind::Cond(c, a, b) => {
                if !dse_ir::loops::expr_is_pure(c) {
                    return Err(self.err("impure `?:` condition in pointer assignment"));
                }
                let ca = self.span_of(a)?;
                let cb = self.span_of(b)?;
                match (ca, cb) {
                    (SpanVal::Expr(x), SpanVal::Expr(y)) => {
                        let c = self.rewrite_expr(c)?;
                        Ok(SpanVal::Expr(u(ExprKind::Cond(
                            Box::new(c),
                            Box::new(x),
                            Box::new(y),
                        ))))
                    }
                    _ => Err(self.err("`?:` over call results in pointer assignment")),
                }
            }
            _ => {
                let sp = self.span_expr(e)?;
                Ok(SpanVal::Expr(sp))
            }
        }
    }

    /// The span of a pointer-valued *storage* expression (variable or fat
    /// memory cell), re-evaluating the place.
    fn span_expr(&mut self, e: &Expr) -> Result<Expr, XformError> {
        match &e.kind {
            ExprKind::Var {
                binding: Some(b),
                name,
                ..
            } => {
                let v = self.var_id(*b);
                let ty = e.ty();
                if matches!(ty, Type::Array(..)) {
                    // Array decay: the object's size is static.
                    let t = self.tymap.mem(&self.var_ty(v).clone());
                    return Ok(sizeof_ty(t));
                }
                if self.plan.var_expanded(v) {
                    // Expanded fat variable: span lives in the cell.
                    let k = self.copy_index(e.eid);
                    return Ok(fld(idx(self.root_expr(v), k), "span"));
                }
                if self.plan.is_fat(&ty.decayed()) {
                    return Ok(var(&sp_name(name)));
                }
                Err(self.err(format!(
                    "pointer `{name}` needs a span but is not promoted (plan bug?)"
                )))
            }
            ExprKind::Cast(_, inner) => self.span_expr(inner),
            ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
                let ptr_side = if l.ty().decayed().is_pointer() { l } else { r };
                self.span_expr(ptr_side)
            }
            ExprKind::Index { .. } | ExprKind::Field { .. } | ExprKind::Deref(_) => {
                let ty = e.ty();
                if matches!(ty, Type::Array(..)) {
                    // Sub-object of a named array: static size of the root.
                    if let Some(AccessRoot::Direct(b)) = access_root(e) {
                        let v = self.var_id(b);
                        let t = self.tymap.mem(&self.var_ty(v).clone());
                        return Ok(sizeof_ty(t));
                    }
                }
                if self.plan.is_fat(&ty.decayed()) {
                    if !lvalue_is_pure(e) {
                        return Err(self.err("span of a side-effecting pointer cell expression"));
                    }
                    let place = self.rewrite_place(e)?;
                    return Ok(fld(place, "span"));
                }
                Err(self.err("pointer expression needs a span but its type is not promoted"))
            }
            ExprKind::AddrOf(inner) => match access_root(inner) {
                Some(AccessRoot::Direct(b)) => {
                    let v = self.var_id(b);
                    let t = self.tymap.mem(&self.var_ty(v).clone());
                    Ok(sizeof_ty(t))
                }
                Some(AccessRoot::Indirect(base)) => self.span_expr(base),
                None => Err(self.err("cannot compute span of address expression")),
            },
            ExprKind::IntLit(0) => Ok(ilit(0)),
            other => Err(self.err(format!("cannot compute span of expression {other:?}"))),
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Rewrites an expression in value position. Pointer-typed results are
    /// thin pointer values (fat cells are unwrapped through `.ptr`).
    fn rewrite_expr(&mut self, e: &Expr) -> Result<Expr, XformError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(ilit(*v)),
            ExprKind::FloatLit(v) => Ok(u(ExprKind::FloatLit(*v))),
            ExprKind::Var { .. }
            | ExprKind::Index { .. }
            | ExprKind::Field { .. }
            | ExprKind::Deref(_) => {
                let place = self.rewrite_place(e)?;
                if self.plan.is_fat(&e.ty().decayed()) && self.place_is_fat_cell(e) {
                    // The `.ptr` projection is the node lowering sites, so
                    // it inherits the access's identity.
                    Ok(stamp(fld(place, "ptr"), e))
                } else {
                    Ok(place)
                }
            }
            ExprKind::Unary(op, a) => Ok(u(ExprKind::Unary(*op, Box::new(self.rewrite_expr(a)?)))),
            ExprKind::Binary(op, l, r) => {
                Ok(bin(*op, self.rewrite_expr(l)?, self.rewrite_expr(r)?))
            }
            ExprKind::Assign { op, lhs, rhs } => {
                if self.dst_carries_span(lhs) && *op == AssignOp::Set {
                    return Err(self.err(
                        "assignment to a span-carrying pointer used as a value; \
                         make it a standalone statement",
                    ));
                }
                let mut place = self.rewrite_place(lhs)?;
                // Compound updates on fat pointers (`p += n`) keep the span
                // (Table 3 "Pointer arithmetic 1") but target the ptr field
                // when the storage is a fat cell.
                if self.plan.is_fat(&lhs.ty().decayed()) && self.place_is_fat_cell(lhs) {
                    place = stamp(fld(place, "ptr"), lhs);
                }
                Ok(u(ExprKind::Assign {
                    op: *op,
                    lhs: Box::new(place),
                    rhs: Box::new(self.rewrite_expr(rhs)?),
                }))
            }
            ExprKind::Cond(c, a, b) => Ok(u(ExprKind::Cond(
                Box::new(self.rewrite_expr(c)?),
                Box::new(self.rewrite_expr(a)?),
                Box::new(self.rewrite_expr(b)?),
            ))),
            ExprKind::Call { name, args } => self.rewrite_call(e, name, args),
            ExprKind::AddrOf(inner) => Ok(addrof(self.rewrite_place_shared(inner)?)),
            ExprKind::Cast(t, inner) => {
                let target = self.tymap.var(t);
                Ok(u(ExprKind::Cast(
                    target,
                    Box::new(self.rewrite_expr(inner)?),
                )))
            }
            ExprKind::SizeofType(t) => {
                let t = self.tymap.mem(t);
                Ok(sizeof_ty(t))
            }
            ExprKind::SizeofExpr(inner) => {
                // Fold to the promoted static type of the operand: the
                // operand may have been expanded/promoted, changing its
                // declared shape.
                let t = self.tymap.mem(&inner.ty().clone());
                Ok(sizeof_ty(t))
            }
            ExprKind::IncDec { pre, inc, target } => {
                // Pointer ++ keeps its span (Table 3 "Pointer arithmetic 1").
                let place = self.rewrite_place(target)?;
                let place =
                    if self.plan.is_fat(&target.ty().decayed()) && self.place_is_fat_cell(target) {
                        stamp(fld(place, "ptr"), target)
                    } else {
                        place
                    };
                Ok(u(ExprKind::IncDec {
                    pre: *pre,
                    inc: *inc,
                    target: Box::new(place),
                }))
            }
        }
    }

    /// Whether this pointer-typed access denotes a fat *memory cell*
    /// (needing `.ptr`/`.span`) rather than a thin fat variable.
    fn place_is_fat_cell(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Var {
                binding: Some(b), ..
            } => {
                // Expanded fat variables live in cells; plain fat variables
                // are thin.
                self.plan.var_expanded(self.var_id(*b))
            }
            _ => true,
        }
    }

    fn rewrite_call(&mut self, e: &Expr, name: &str, args: &[Expr]) -> Result<Expr, XformError> {
        match name {
            "malloc" | "calloc" => {
                let expanded = self.plan.alloc_expanded(e.eid);
                let mut new_args: Vec<Expr> = args
                    .iter()
                    .map(|a| self.rewrite_expr(a))
                    .collect::<Result<_, _>>()?;
                if expanded {
                    // Table 1 "Heap object": size *= N (first argument for
                    // both malloc and calloc — calloc gets N times the
                    // element count, same total layout).
                    let n = ilit(self.plan.nthreads as i64);
                    let first = new_args.remove(0);
                    new_args.insert(0, mul(first, n));
                }
                Ok(stamp(call(name, new_args), e))
            }
            "realloc" => {
                if self.plan.alloc_expanded(e.eid) {
                    // Moving N copies requires the old span.
                    let old_span = self.span_expr(&args[0])?;
                    let p = self.rewrite_expr(&args[0])?;
                    let n = self.rewrite_expr(&args[1])?;
                    Ok(stamp(call("__realloc_expanded", vec![p, n, old_span]), e))
                } else {
                    let new_args = args
                        .iter()
                        .map(|a| self.rewrite_expr(a))
                        .collect::<Result<_, _>>()?;
                    Ok(stamp(call(name, new_args), e))
                }
            }
            _ => {
                let callee = self.program.functions.iter().find(|f| f.name == name);
                let mut new_args: Vec<Expr> = args
                    .iter()
                    .map(|a| self.rewrite_expr(a))
                    .collect::<Result<_, _>>()?;
                if let Some(callee) = callee {
                    // Shadow span arguments for fat parameters, in order.
                    for (i, p) in callee.params.iter().enumerate() {
                        if self.plan.is_fat(&p.ty) {
                            let sp = self.span_of(&args[i])?;
                            match sp {
                                SpanVal::Expr(x) => new_args.push(x),
                                SpanVal::FromCallee => {
                                    return Err(self.err(
                                        "nested fat-returning call as argument; \
                                         assign it to a local first",
                                    ))
                                }
                            }
                        }
                    }
                    if self.plan.is_fat(&callee.ret_ty) {
                        // Default receiver; pointer-assignment contexts
                        // replace it with the real destination span.
                        new_args.push(addrof(idx(var("__dspan"), tid())));
                    }
                }
                Ok(call(name, new_args))
            }
        }
    }

    /// Rewrites an access/lvalue chain into its transformed *place*.
    /// Redirection (Table 2) is applied at the chain root using the
    /// access's own classification — except for interleaved arrays, whose
    /// copy index goes innermost (`v[i][tid]`, Fig. 2b).
    fn rewrite_place(&mut self, e: &Expr) -> Result<Expr, XformError> {
        Ok(stamp(self.rewrite_place_entry(e, false)?, e))
    }

    /// Like [`Xf::rewrite_place`], but forced shared (used under `&`):
    /// addresses always name copy 0.
    fn rewrite_place_shared(&mut self, e: &Expr) -> Result<Expr, XformError> {
        Ok(stamp(self.rewrite_place_entry(e, true)?, e))
    }

    fn rewrite_place_entry(&mut self, e: &Expr, force_shared: bool) -> Result<Expr, XformError> {
        if let Some(AccessRoot::Direct(b)) = access_root(e) {
            let v = self.var_id(b);
            if self.is_interleaved_array(v) {
                if e.ty().is_aggregate() {
                    return Err(self.err(format!(
                        "interleaved layout: partial access to array `{}` (its \
                         rows are not contiguous per copy)",
                        self.var_name(v)
                    )));
                }
                let inner = self.rewrite_place_inner(e, e.eid, force_shared, true)?;
                let k = if force_shared {
                    ilit(0)
                } else {
                    self.copy_index(e.eid)
                };
                return Ok(idx(inner, k));
            }
        }
        self.rewrite_place_inner(e, e.eid, force_shared, false)
    }

    fn rewrite_place_inner(
        &mut self,
        e: &Expr,
        top_eid: u32,
        force_shared: bool,
        suppress_root_k: bool,
    ) -> Result<Expr, XformError> {
        match &e.kind {
            ExprKind::Var {
                binding: Some(b),
                name,
                ..
            } => {
                let v = self.var_id(*b);
                if self.plan.var_expanded(v) && !suppress_root_k {
                    let k = if force_shared {
                        ilit(0)
                    } else {
                        self.copy_index(top_eid)
                    };
                    Ok(idx(self.root_expr(v), k))
                } else {
                    let _ = name;
                    Ok(self.root_expr(v))
                }
            }
            ExprKind::Field { base, field } => {
                let b = self.rewrite_place_inner(base, top_eid, force_shared, suppress_root_k)?;
                Ok(fld(b, field))
            }
            ExprKind::Index { base, index } => {
                let i = self.rewrite_expr(index)?;
                if matches!(base.ty(), Type::Array(..)) {
                    let b =
                        self.rewrite_place_inner(base, top_eid, force_shared, suppress_root_k)?;
                    Ok(idx(b, i))
                } else {
                    let b = self.boundary_pointer(base, top_eid, force_shared)?;
                    Ok(idx(b, i))
                }
            }
            ExprKind::Deref(p) => {
                let b = self.boundary_pointer(p, top_eid, force_shared)?;
                Ok(deref(b))
            }
            other => Err(self.err(format!("not an access expression: {other:?}"))),
        }
    }

    /// Rewrites the pointer at an indirect access boundary, applying the
    /// `tid * span / sizeof(*p)` offset for private accesses to expanded
    /// structures (Table 2 "Pointer deref").
    fn boundary_pointer(
        &mut self,
        p: &Expr,
        top_eid: u32,
        force_shared: bool,
    ) -> Result<Expr, XformError> {
        let base = self.rewrite_expr(p)?;
        if force_shared || !self.is_private(top_eid) {
            return Ok(base);
        }
        self.report.private_accesses_redirected += 1;
        let ptr_ty = p.ty().decayed();
        let pointee = ptr_ty.pointee().expect("boundary is a pointer").clone();
        if self.plan.heap_localize {
            // Runtime-privatization baseline: translate through the
            // runtime instead of offsetting into an expanded structure.
            let target = self.tymap.mem(&pointee).ptr_to();
            return Ok(u(ExprKind::Cast(
                target,
                Box::new(call("__localize", vec![base])),
            )));
        }
        let elem_size = {
            let t = self.tymap.mem(&pointee);
            self.tymap.table.size_of(&t)
        };
        let span: Expr = if let Some(&c) = self.plan.const_span.get(&top_eid) {
            ilit(c as i64)
        } else if self.plan.is_fat(&ptr_ty) {
            self.span_expr(p)?
        } else {
            return Err(self.err(format!(
                "private indirect access (eid {top_eid}) has neither a constant span \
                 nor a promoted base pointer (plan bug?)"
            )));
        };
        // base + __tid() * span / sizeof(*p)
        let offset = bin(BinOp::Div, mul(tid(), span), ilit(elem_size as i64));
        Ok(bin(BinOp::Add, base, offset))
    }

    /// The root expression for a named variable (expanded variables keep
    /// their name; their type became an N-copy array).
    fn root_expr(&mut self, v: VarId) -> Expr {
        var(self.var_name(v))
    }
}

impl<'a> Xf<'a> {
    /// The place holding a fat integer's span: shadow variable, or the
    /// current thread's shadow-array slot when the integer is expanded.
    fn fat_int_span_place(&mut self, e: &Expr) -> Expr {
        let ExprKind::Var {
            binding: Some(b),
            name,
            ..
        } = &e.kind
        else {
            unreachable!("fat integers are plain variables");
        };
        let v = self.var_id(*b);
        if self.plan.var_expanded(v) {
            let k = self.copy_index(e.eid);
            idx(var(&sp_name(name)), k)
        } else {
            var(&sp_name(name))
        }
    }
}

/// Span source of a pointer expression.
enum SpanVal {
    /// An expression computing the span.
    Expr(Expr),
    /// The span comes from a fat-returning callee's out-parameter.
    FromCallee,
}

/// `p = p ± <const>` (or a cast of it): the span is unchanged, so its store
/// can be elided (Section 3.4's dead-store elimination).
fn span_preserving_self_update(rhs: &Expr, dst_name: &str) -> bool {
    match &rhs.kind {
        ExprKind::Cast(_, inner) => span_preserving_self_update(inner, dst_name),
        ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
            let is_dst =
                |x: &Expr| matches!(&x.kind, ExprKind::Var { name, .. } if name == dst_name);
            (is_dst(l) && matches!(r.kind, ExprKind::IntLit(_)))
                || (is_dst(r) && matches!(l.kind, ExprKind::IntLit(_)))
        }
        _ => false,
    }
}

/// True when evaluating this lvalue's address has no side effects (so the
/// transform may evaluate it more than once).
fn lvalue_is_pure(e: &Expr) -> bool {
    dse_ir::loops::expr_is_pure(e)
}

/// Does the statement mention any of the given eids?
fn stmt_mentions_eids(stmt: &Stmt, eids: &HashSet<u32>) -> bool {
    let mut found = false;
    let mut probe = stmt.clone();
    visit_exprs_in_stmt(&mut probe, &mut |e| {
        if eids.contains(&e.eid) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::types::TypeTable;

    fn fat_set(tys: &[Type]) -> HashSet<Type> {
        tys.iter().cloned().collect()
    }

    #[test]
    fn typemap_promotes_fat_pointers_to_records() {
        let orig = TypeTable::new();
        let int_ptr = Type::Int.ptr_to();
        let mut tm = TypeMap::build(&orig, &fat_set(std::slice::from_ref(&int_ptr)));
        // Memory cells become the fat record.
        let cell = tm.mem(&int_ptr);
        let Type::Struct(id) = cell else {
            panic!("expected fat record")
        };
        let def = tm.table.struct_def(id);
        assert_eq!(def.fields[0].name, "ptr");
        assert_eq!(def.fields[1].name, "span");
        assert_eq!(def.size, 16);
        // Variable declarations stay thin (shadow span elsewhere).
        assert_eq!(tm.var(&int_ptr), Type::Int.ptr_to());
        // Pointer-to-fat-pointer: the pointee promotes, the outer level is
        // decided by its own fatness (not fat here).
        let pp = int_ptr.clone().ptr_to();
        assert_eq!(tm.mem(&pp), Type::Struct(id).ptr_to());
    }

    #[test]
    fn typemap_rewrites_struct_fields() {
        let mut orig = TypeTable::new();
        let sid = orig.define_struct(
            "Holder",
            vec![("n".into(), Type::Int), ("data".into(), Type::Int.ptr_to())],
        );
        let tm = TypeMap::build(&orig, &fat_set(&[Type::Int.ptr_to()]));
        let new_sid = tm.struct_map[&sid];
        let def = tm.table.struct_def(new_sid);
        assert!(matches!(def.field("data").unwrap().ty, Type::Struct(_)));
        assert_eq!(def.size, 8 + 16, "int (padded) + fat record");
        // Without fatness the layout is unchanged.
        let tm2 = TypeMap::build(&orig, &HashSet::new());
        let new_id2 = tm2.struct_map[&sid];
        assert_eq!(tm2.table.struct_def(new_id2).size, 16);
    }

    #[test]
    fn typemap_handles_self_referential_structs() {
        let mut orig = TypeTable::new();
        let sid = orig.declare_struct("Node");
        orig.complete_struct(
            sid,
            vec![
                ("v".into(), Type::Int),
                ("next".into(), Type::Struct(sid).ptr_to()),
            ],
        )
        .unwrap();
        let node_ptr = Type::Struct(sid).ptr_to();
        let tm = TypeMap::build(&orig, &fat_set(std::slice::from_ref(&node_ptr)));
        let new_sid = tm.struct_map[&sid];
        let def = tm.table.struct_def(new_sid).clone();
        // next is now a fat record whose ptr field targets the new Node.
        let Type::Struct(fat_id) = &def.field("next").unwrap().ty else {
            panic!("next should be a fat record")
        };
        let fat = tm.table.struct_def(*fat_id);
        assert_eq!(fat.field("ptr").unwrap().ty, Type::Struct(new_sid).ptr_to());
    }

    #[test]
    fn span_elision_recognizes_self_updates() {
        let p = dse_lang::compile_to_ast(
            "int main() { int *p; p = malloc(8); p = p + 1; p = p - 2;
               int *q; q = p + 1; p = (int*)(p + 3); return 0; }",
        )
        .unwrap();
        let mut exprs = Vec::new();
        let mut probe = p.functions[0].body.clone();
        dse_lang::ast::visit_exprs_in_block(&mut probe, &mut |e| {
            if let ExprKind::Assign { rhs, .. } = &e.kind {
                exprs.push((*rhs.clone(), ()));
            }
        });
        // p = malloc(8): not a self-update.
        assert!(!span_preserving_self_update(&exprs[0].0, "p"));
        // p = p + 1 / p = p - 2: elidable.
        assert!(span_preserving_self_update(&exprs[1].0, "p"));
        assert!(span_preserving_self_update(&exprs[2].0, "p"));
        // q = p + 1: different destination.
        assert!(!span_preserving_self_update(&exprs[3].0, "q"));
        // p = (int*)(p + 3): cast-wrapped self-update still elidable.
        assert!(span_preserving_self_update(&exprs[4].0, "p"));
    }

    #[test]
    fn report_structure_metric_excludes_scalars() {
        let r = ExpansionReport {
            expanded_allocs: 2,
            expanded_globals: 1,
            expanded_locals: 1,
            expanded_scalar_locals: 7,
            ..Default::default()
        };
        assert_eq!(r.privatized_structures(), 4);
    }
}
