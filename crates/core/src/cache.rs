//! The content-addressed artifact store.
//!
//! Every pipeline phase (parse, lower, profile, classify, plan, xform,
//! reglower, verify) produces an artifact keyed by a [`ContentHash`] of
//! its inputs:
//! the source text, the relevant options, and the *content* hashes of its
//! upstream artifacts. Keying lower by the hash of the printed AST (rather
//! than by the source hash) gives the cache early cutoff: a comment or
//! whitespace edit re-parses but then rediscovers the same AST hash, so
//! lowering, profiling, classification, planning, transformation and
//! verification are all served from cache.
//!
//! The store is an in-process map from key to `Arc<dyn Any>`:
//!
//! * **Hits** bump an LRU tick and hand out the shared `Arc`.
//! * **Misses** insert an *in-flight* marker, compute outside the lock,
//!   publish, and wake waiters.
//! * **Concurrent identical requests** find the in-flight marker and park
//!   on a condvar instead of duplicating the computation (counted as
//!   *dedups*).
//! * **Eviction** removes the least-recently-used ready artifact once the
//!   ready count exceeds the capacity bound; in-flight entries are never
//!   evicted.
//!
//! Failed computations are not cached: the marker is removed, waiters are
//! woken, and the first of them becomes the new computer. *Panicking*
//! computations get the same treatment through a drop guard — the marker
//! must not leak, or every later request for that key would park forever
//! on a computation nobody is running. For the same reason the store
//! recovers poisoned locks instead of unwrapping: one panicking request on
//! a shared daemon store must not turn every subsequent request into a
//! `PoisonError` panic.

use dse_telemetry::hash::ContentHash;
use dse_telemetry::{PhaseCacheStat, ServerStats};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Canonical phase ordering for stats reporting.
pub const PHASES: [&str; 8] = [
    "parse", "lower", "profile", "classify", "plan", "xform", "reglower", "verify",
];

/// Locks `m`, recovering the data if a previous holder panicked. The
/// store's invariants hold between mutations (the map is only ever
/// observed with the lock held), so a poisoned lock is safe to clear.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How one phase of one request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Computed here (and published for later requests).
    Miss,
    /// Served from a ready artifact.
    Hit,
    /// Waited for a concurrent identical computation, then shared it.
    Deduped,
}

impl CacheOutcome {
    /// Wire name used in the daemon protocol and telemetry stream.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Deduped => "dedup",
        }
    }

    /// True when the requester did not run the phase itself.
    pub fn served_from_cache(&self) -> bool {
        !matches!(self, CacheOutcome::Miss)
    }
}

/// One phase of one request: which artifact, how it was satisfied, and how
/// long this requester waited for it (compute time on a miss, lock/park
/// time otherwise).
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name.
    pub phase: &'static str,
    /// The artifact's content key.
    pub key: ContentHash,
    /// Hit, miss or dedup.
    pub outcome: CacheOutcome,
    /// Wall time this requester spent obtaining the artifact.
    pub wall: Duration,
    /// Offset of this phase's start from the store's creation
    /// ([`ArtifactStore::epoch`]) — places the phase on a trace timeline
    /// (chrome-trace export of pipeline spans next to runtime events).
    pub at: Duration,
}

/// The per-request trace of phase outcomes, appended to by the pipeline.
pub type Trace = Vec<PhaseOutcome>;

/// Sums a trace's cache hits (dedup waits count as hits).
pub fn trace_hits(trace: &Trace) -> usize {
    trace
        .iter()
        .filter(|p| p.outcome.served_from_cache())
        .count()
}

/// Sums a trace's cache misses.
pub fn trace_misses(trace: &Trace) -> usize {
    trace
        .iter()
        .filter(|p| p.outcome == CacheOutcome::Miss)
        .count()
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseCounters {
    hits: u64,
    misses: u64,
    dedups: u64,
    evictions: u64,
}

enum Slot {
    /// A computation is running; waiters park on the store condvar.
    InFlight,
    /// The artifact, shared by every requester.
    Ready(Arc<dyn Any + Send + Sync>),
}

struct Entry {
    phase: &'static str,
    slot: Slot,
    /// LRU tick of the last touch (hit or publish).
    last_used: u64,
}

struct Inner {
    map: HashMap<ContentHash, Entry>,
    tick: u64,
    counters: HashMap<&'static str, PhaseCounters>,
}

impl Inner {
    fn counter(&mut self, phase: &'static str) -> &mut PhaseCounters {
        self.counters.entry(phase).or_default()
    }

    fn ready_count(&self) -> usize {
        self.map
            .values()
            .filter(|e| matches!(e.slot, Slot::Ready(_)))
            .count()
    }

    /// Evicts least-recently-used ready artifacts down to `capacity`.
    fn evict_to(&mut self, capacity: usize) {
        while self.ready_count() > capacity {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (*k, e.phase));
            match victim {
                Some((key, phase)) => {
                    self.map.remove(&key);
                    self.counter(phase).evictions += 1;
                }
                None => break,
            }
        }
    }
}

/// The content-addressed artifact store. See the module docs.
pub struct ArtifactStore {
    inner: Mutex<Inner>,
    ready_cv: Condvar,
    capacity: usize,
    /// Timeline origin for [`PhaseOutcome::at`] offsets.
    epoch: Instant,
}

impl ArtifactStore {
    /// Default ready-artifact capacity: generous for a per-process cache,
    /// bounded so a long-lived daemon cannot grow without limit.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// A store bounded to `capacity` ready artifacts (minimum 1).
    pub fn with_capacity(capacity: usize) -> ArtifactStore {
        ArtifactStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                counters: HashMap::new(),
            }),
            ready_cv: Condvar::new(),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// The instant [`PhaseOutcome::at`] offsets are measured from (store
    /// creation).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// A store with the default capacity.
    pub fn new() -> ArtifactStore {
        ArtifactStore::with_capacity(ArtifactStore::DEFAULT_CAPACITY)
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ready artifacts currently resident.
    pub fn len(&self) -> usize {
        lock_clean(&self.inner).ready_count()
    }

    /// True when no ready artifacts are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, computing (and publishing) the artifact on a miss.
    /// Concurrent requests for the same key block until the first finishes
    /// and then share its artifact. Appends the outcome to `trace`.
    ///
    /// # Errors
    ///
    /// Propagates the compute error; failures are not cached.
    ///
    /// # Panics
    ///
    /// Panics if `key` resolves to an artifact of a different type — only
    /// possible if two phases derive identical keys, which the phase tag
    /// mixed into every key prevents.
    pub fn get_or_compute<T, E, F>(
        &self,
        phase: &'static str,
        key: ContentHash,
        trace: &mut Trace,
        compute: F,
    ) -> Result<Arc<T>, E>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> Result<T, E>,
    {
        enum Found {
            Ready(Arc<dyn Any + Send + Sync>),
            InFlight,
            Vacant,
        }
        let started = Instant::now();
        let at = started.saturating_duration_since(self.epoch);
        let mut waited = false;
        let mut st = lock_clean(&self.inner);
        loop {
            let found = match st.map.get(&key) {
                Some(e) => match &e.slot {
                    Slot::Ready(v) => Found::Ready(Arc::clone(v)),
                    Slot::InFlight => Found::InFlight,
                },
                None => Found::Vacant,
            };
            match found {
                Found::Ready(v) => {
                    st.tick += 1;
                    let tick = st.tick;
                    st.map.get_mut(&key).unwrap().last_used = tick;
                    let outcome = if waited {
                        st.counter(phase).dedups += 1;
                        CacheOutcome::Deduped
                    } else {
                        st.counter(phase).hits += 1;
                        CacheOutcome::Hit
                    };
                    drop(st);
                    trace.push(PhaseOutcome {
                        phase,
                        key,
                        outcome,
                        wall: started.elapsed(),
                        at,
                    });
                    return Ok(v
                        .downcast::<T>()
                        .expect("artifact type mismatch for content key"));
                }
                Found::InFlight => {
                    waited = true;
                    st = self
                        .ready_cv
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Found::Vacant => {
                    st.tick += 1;
                    let tick = st.tick;
                    st.map.insert(
                        key,
                        Entry {
                            phase,
                            slot: Slot::InFlight,
                            last_used: tick,
                        },
                    );
                    st.counter(phase).misses += 1;
                    drop(st);
                    // If `compute` panics, the guard removes the in-flight
                    // marker and wakes waiters on unwind; otherwise the
                    // publish/remove below owns the slot.
                    let mut guard = InFlightGuard {
                        store: self,
                        key,
                        armed: true,
                    };
                    let result = compute();
                    guard.armed = false;
                    let mut st = lock_clean(&self.inner);
                    match result {
                        Ok(v) => {
                            let v: Arc<T> = Arc::new(v);
                            st.tick += 1;
                            let tick = st.tick;
                            let entry = st.map.get_mut(&key).expect("in-flight entry present");
                            entry.slot = Slot::Ready(Arc::clone(&v) as Arc<dyn Any + Send + Sync>);
                            entry.last_used = tick;
                            st.evict_to(self.capacity);
                            drop(st);
                            self.ready_cv.notify_all();
                            trace.push(PhaseOutcome {
                                phase,
                                key,
                                outcome: CacheOutcome::Miss,
                                wall: started.elapsed(),
                                at,
                            });
                            return Ok(v);
                        }
                        Err(e) => {
                            st.map.remove(&key);
                            drop(st);
                            self.ready_cv.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Snapshot of the per-phase cache counters, in canonical phase order
    /// (unknown phases appended alphabetically).
    pub fn stats(&self) -> ServerStats {
        let st = lock_clean(&self.inner);
        let mut phases: Vec<PhaseCacheStat> = Vec::new();
        let mut push = |name: &str, c: &PhaseCounters| {
            phases.push(PhaseCacheStat {
                phase: name.to_string(),
                hits: c.hits,
                misses: c.misses,
                dedups: c.dedups,
                evictions: c.evictions,
            });
        };
        for name in PHASES {
            if let Some(c) = st.counters.get(name) {
                push(name, c);
            }
        }
        let mut extra: Vec<&&str> = st
            .counters
            .keys()
            .filter(|k| !PHASES.contains(*k))
            .collect();
        extra.sort();
        for name in extra {
            let c = st.counters[*name];
            push(name, &c);
        }
        ServerStats {
            requests: 0,
            failures: 0,
            cache_entries: st.ready_count() as u64,
            cache_capacity: self.capacity as u64,
            phases,
            ..ServerStats::default()
        }
    }
}

impl Default for ArtifactStore {
    fn default() -> Self {
        ArtifactStore::new()
    }
}

/// Removes a key's in-flight marker on unwind (see `get_or_compute`).
struct InFlightGuard<'a> {
    store: &'a ArtifactStore,
    key: ContentHash,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = lock_clean(&self.store.inner);
        if matches!(
            st.map.get(&self.key),
            Some(Entry {
                slot: Slot::InFlight,
                ..
            })
        ) {
            st.map.remove(&self.key);
        }
        drop(st);
        self.store.ready_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_telemetry::ContentHasher;

    fn key(n: u64) -> ContentHash {
        ContentHasher::new("test").u64(n).finish()
    }

    #[test]
    fn hit_after_miss_shares_the_artifact() {
        let store = ArtifactStore::new();
        let mut trace = Trace::new();
        let a: Arc<String> = store
            .get_or_compute("parse", key(1), &mut trace, || {
                Ok::<_, String>("hello".to_string())
            })
            .unwrap();
        let b: Arc<String> = store
            .get_or_compute("parse", key(1), &mut trace, || -> Result<String, String> {
                panic!("second lookup must not compute")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(trace[0].outcome, CacheOutcome::Miss);
        assert_eq!(trace[1].outcome, CacheOutcome::Hit);
        let s = store.stats();
        assert_eq!(s.phases[0].phase, "parse");
        assert_eq!((s.phases[0].hits, s.phases[0].misses), (1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let store = ArtifactStore::new();
        let mut trace = Trace::new();
        let r: Result<Arc<u32>, String> =
            store.get_or_compute("plan", key(2), &mut trace, || Err("boom".into()));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(trace.is_empty());
        // The failed slot is gone: the next request computes fresh.
        let v: Arc<u32> = store
            .get_or_compute("plan", key(2), &mut trace, || Ok::<_, String>(7))
            .unwrap();
        assert_eq!(*v, 7);
        assert_eq!(trace[0].outcome, CacheOutcome::Miss);
    }

    #[test]
    fn lru_evicts_oldest_ready_artifact() {
        let store = ArtifactStore::with_capacity(2);
        let mut trace = Trace::new();
        for n in 0..3u64 {
            let _: Arc<u64> = store
                .get_or_compute("lower", key(n), &mut trace, || Ok::<_, String>(n))
                .unwrap();
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().phases[0].evictions, 1);
        // key(0) was the LRU victim; re-requesting it recomputes.
        let mut trace = Trace::new();
        let _: Arc<u64> = store
            .get_or_compute("lower", key(0), &mut trace, || Ok::<_, String>(0))
            .unwrap();
        assert_eq!(trace[0].outcome, CacheOutcome::Miss);
        // key(2) is still resident.
        let _: Arc<u64> = store
            .get_or_compute("lower", key(2), &mut trace, || -> Result<u64, String> {
                panic!("resident")
            })
            .unwrap();
        assert_eq!(trace[1].outcome, CacheOutcome::Hit);
    }

    #[test]
    fn touching_an_artifact_saves_it_from_eviction() {
        let store = ArtifactStore::with_capacity(2);
        let mut trace = Trace::new();
        for n in 0..2u64 {
            let _: Arc<u64> = store
                .get_or_compute("lower", key(n), &mut trace, || Ok::<_, String>(n))
                .unwrap();
        }
        // Touch key(0) so key(1) becomes the LRU victim.
        let _: Arc<u64> = store
            .get_or_compute("lower", key(0), &mut trace, || -> Result<u64, String> {
                panic!("resident")
            })
            .unwrap();
        let _: Arc<u64> = store
            .get_or_compute("lower", key(9), &mut trace, || Ok::<_, String>(9))
            .unwrap();
        let mut trace = Trace::new();
        let _: Arc<u64> = store
            .get_or_compute("lower", key(0), &mut trace, || -> Result<u64, String> {
                panic!("survived")
            })
            .unwrap();
        assert_eq!(trace[0].outcome, CacheOutcome::Hit);
    }

    #[test]
    fn panicking_compute_leaves_the_store_usable() {
        let store = ArtifactStore::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut trace = Trace::new();
            let _: Arc<u32> = store
                .get_or_compute("xform", key(3), &mut trace, || -> Result<u32, String> {
                    panic!("lowering bug")
                })
                .unwrap();
        }));
        assert!(r.is_err());
        // The in-flight marker is gone and the (possibly poisoned) lock is
        // recovered: the next request computes fresh instead of parking
        // forever or dying with a PoisonError.
        let mut trace = Trace::new();
        let v: Arc<u32> = store
            .get_or_compute("xform", key(3), &mut trace, || Ok::<_, String>(11))
            .unwrap();
        assert_eq!(*v, 11);
        assert_eq!(trace[0].outcome, CacheOutcome::Miss);
        assert_eq!(store.stats().phases[0].misses, 2);
    }

    #[test]
    fn waiters_survive_a_panicking_computer() {
        let store = Arc::new(ArtifactStore::new());
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let computer = {
            let store = Arc::clone(&store);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut trace = Trace::new();
                    let _: Arc<u32> = store
                        .get_or_compute("verify", key(4), &mut trace, || -> Result<u32, String> {
                            gate.store(true, std::sync::atomic::Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            panic!("worker trapped")
                        })
                        .unwrap();
                }));
            })
        };
        while !gate.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // This request parks on the in-flight marker; the guard must wake
        // it when the computer unwinds, and it then computes fresh.
        let mut trace = Trace::new();
        let v: Arc<u32> = store
            .get_or_compute("verify", key(4), &mut trace, || Ok::<_, String>(5))
            .unwrap();
        assert_eq!(*v, 5);
        computer.join().unwrap();
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let store = Arc::new(ArtifactStore::new());
        let computes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let mut trace = Trace::new();
                let v: Arc<u64> = store
                    .get_or_compute("profile", key(5), &mut trace, || {
                        computes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok::<_, String>(99)
                    })
                    .unwrap();
                (*v, trace[0].outcome)
            }));
        }
        let outcomes: Vec<(u64, CacheOutcome)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(outcomes.iter().all(|(v, _)| *v == 99));
        assert_eq!(
            outcomes
                .iter()
                .filter(|(_, o)| *o == CacheOutcome::Miss)
                .count(),
            1
        );
        let s = store.stats();
        assert_eq!(s.phases[0].misses, 1);
        assert_eq!(s.phases[0].hits + s.phases[0].dedups, 7);
    }
}
