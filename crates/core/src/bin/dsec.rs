//! `dsec` — the data-structure-expansion compiler driver.
//!
//! ```text
//! dsec <program.cee> [--threads N] [--opt none|noconst|full] [--baseline]
//!      [--emit source|report|ddg|bytecode|trace] [--run] [--serial]
//!      [--timing] [--metrics <path|->] [--in <ints,comma,separated>]
//! ```
//!
//! Examples:
//!
//! ```text
//! dsec prog.cee --emit report                 # what would be privatized
//! dsec prog.cee --emit source --threads 4     # the transformed program
//! dsec prog.cee --run --threads 8             # transform and execute
//! dsec prog.cee --run --serial                # reference run
//! dsec prog.cee --run --timing --metrics -    # telemetry JSON on stdout
//! dsec prog.cee --emit trace > trace.jsonl    # serial execution as JSONL
//! ```
//!
//! `--timing` prints the phase timeline (parse, lower, profile, classify,
//! plan, xform) to stderr. `--metrics` writes a `RunMetrics` JSON document
//! (see DESIGN.md, "Observability") to a file, or to stdout with `-`.
//! `--emit trace` executes the *serial* program under a trace observer and
//! streams each sited access, loop event and heap event as one JSON object
//! per line on stdout.

use dse_core::{Analysis, OptLevel, Transformed};
use dse_runtime::{Vm, VmConfig};
use dse_telemetry::{RunMetrics, TraceObserver};
use std::io::Write;
use std::process::ExitCode;

struct Opts {
    path: String,
    threads: u32,
    opt: OptLevel,
    baseline: bool,
    emit: Vec<String>,
    run: bool,
    serial: bool,
    timing: bool,
    metrics: Option<String>,
    inputs: Vec<i64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dsec <program.cee> [--threads N] [--opt none|noconst|full] \
         [--baseline] [--emit source|report|ddg|bytecode|trace] [--run] [--serial] \
         [--timing] [--metrics <path|->] [--in 1,2,3]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        path: String::new(),
        threads: 4,
        opt: OptLevel::Full,
        baseline: false,
        emit: Vec::new(),
        run: false,
        serial: false,
        timing: false,
        metrics: None,
        inputs: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                o.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--opt" => {
                o.opt = match args.next().as_deref() {
                    Some("none") => OptLevel::None,
                    Some("noconst") => OptLevel::NoConstSpan,
                    Some("full") => OptLevel::Full,
                    _ => usage(),
                }
            }
            "--baseline" => o.baseline = true,
            "--emit" => {
                let what = args.next().unwrap_or_else(|| usage());
                if !matches!(
                    what.as_str(),
                    "source" | "report" | "ddg" | "bytecode" | "trace"
                ) {
                    eprintln!("dsec: unknown --emit `{what}`");
                    std::process::exit(2);
                }
                // A repeated value would just print the same artifact twice.
                if !o.emit.contains(&what) {
                    o.emit.push(what);
                }
            }
            "--run" => o.run = true,
            "--serial" => o.serial = true,
            "--timing" => o.timing = true,
            "--metrics" => o.metrics = Some(args.next().unwrap_or_else(|| usage())),
            "--in" => {
                let list = args.next().unwrap_or_else(|| usage());
                o.inputs = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--help" | "-h" => usage(),
            other if o.path.is_empty() && !other.starts_with('-') => o.path = other.to_string(),
            _ => usage(),
        }
    }
    if o.path.is_empty() {
        usage();
    }
    o
}

fn main() -> ExitCode {
    let o = parse_opts();
    match drive(&o) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dsec: {e}");
            ExitCode::from(1)
        }
    }
}

fn drive(o: &Opts) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(&o.path).map_err(|e| format!("{}: {e}", o.path))?;
    let cfg = VmConfig {
        inputs_int: o.inputs.clone(),
        ..Default::default()
    };
    let analysis = Analysis::from_source(&source, cfg.clone())?;

    // Transform exactly once and share the result between every `--emit`
    // consumer, the executed program, and the telemetry snapshot.
    let needs_transform = (o.run && !o.serial)
        || o.timing
        || o.metrics.is_some()
        || o.emit
            .iter()
            .any(|e| matches!(e.as_str(), "report" | "source" | "bytecode"));
    let transformed: Option<Transformed> = if !needs_transform {
        None
    } else if o.baseline {
        Some(analysis.baseline_parallel(o.threads)?)
    } else {
        Some(analysis.transform(o.opt, o.threads)?)
    };

    for emit in &o.emit {
        match emit.as_str() {
            "ddg" => {
                for (ddg, cls) in analysis.profile.loops.iter().zip(&analysis.classifications) {
                    println!(
                        "loop `{}`: {} iterations, {} sites, {} edges, mode {:?}",
                        ddg.label,
                        ddg.iterations,
                        ddg.site_counts.len(),
                        ddg.edges.len(),
                        cls.mode
                    );
                    let b = cls.access_breakdown(ddg);
                    let (f, e, c) = b.fractions();
                    println!(
                        "  accesses: {:.1}% free, {:.1}% expandable, {:.1}% carried",
                        100.0 * f,
                        100.0 * e,
                        100.0 * c
                    );
                }
            }
            "report" => {
                let t = transformed.as_ref().expect("transform computed above");
                let r = &t.report;
                println!("expansion report (N = {}, {:?}):", o.threads, o.opt);
                println!(
                    "  privatized data structures: {}",
                    r.privatized_structures()
                );
                println!("    heap allocation sites:    {}", r.expanded_allocs);
                println!("    globals:                  {}", r.expanded_globals);
                println!("    aggregate locals:         {}", r.expanded_locals);
                println!("  expanded scalars:           {}", r.expanded_scalar_locals);
                println!("  fat pointer types:          {}", r.fat_pointer_types);
                println!("  span-carrying integers:     {}", r.fat_int_vars);
                println!(
                    "  span stores inserted:       {} ({} elided)",
                    r.span_stores_emitted, r.span_stores_elided
                );
                println!(
                    "  private accesses redirected: {}",
                    r.private_accesses_redirected
                );
                for (label, mode) in &t.modes {
                    println!("  loop `{label}` scheduled {mode:?}");
                }
            }
            "source" => {
                let t = transformed.as_ref().expect("transform computed above");
                print!("{}", dse_lang::printer::print_program(&t.program));
            }
            "bytecode" => {
                let t = transformed.as_ref().expect("transform computed above");
                print!("{}", dse_ir::disasm::disassemble(&t.parallel));
            }
            "trace" => {
                // The observer sees what the profiler sees: a serial
                // execution (parallel regions run unobserved by design).
                let mut vm = Vm::new(analysis.serial.clone(), cfg.clone())?;
                let stdout = std::io::stdout();
                let mut obs = TraceObserver::new(std::io::BufWriter::new(stdout.lock()));
                vm.run_with_observer(&mut obs)?;
                let events = obs.events();
                obs.finish()?;
                eprintln!("[trace: {events} events]");
            }
            other => unreachable!("--emit values validated in parse_opts: {other}"),
        }
    }

    let mut exit = ExitCode::SUCCESS;
    let mut run_report = None;
    if o.run {
        let compiled = if o.serial {
            analysis.serial.clone()
        } else {
            transformed
                .as_ref()
                .expect("transform computed above")
                .parallel
                .clone()
        };
        let n = if o.serial { 1 } else { o.threads };
        let mut vm = Vm::new(
            compiled,
            VmConfig {
                nthreads: n,
                inputs_int: o.inputs.clone(),
                ..Default::default()
            },
        )?;
        let report = vm.run()?;
        print!("{}", vm.console());
        let outs = vm.outputs_int();
        if !outs.is_empty() {
            println!("out_long: {outs:?}");
        }
        let fouts = vm.outputs_float();
        if !fouts.is_empty() {
            println!("out_float: {fouts:?}");
        }
        eprintln!(
            "[{} instructions, peak heap {} bytes]",
            report.counters.work, report.peak_heap_bytes
        );
        if let Some(dse_runtime::Value::I(code)) = report.return_value {
            exit = ExitCode::from((code & 0xff) as u8);
        }
        run_report = Some(report);
    }

    // Phase timeline: analysis phases followed by transform phases.
    let phases: Vec<dse_telemetry::PhaseSpan> = analysis
        .phases
        .iter()
        .chain(transformed.iter().flat_map(|t| t.phases.iter()))
        .cloned()
        .collect();

    if o.timing {
        let mut out = String::new();
        for p in &phases {
            p.render(0, &mut out);
        }
        eprint!("{out}");
    }

    if let Some(dest) = &o.metrics {
        let metrics = RunMetrics {
            program: o.path.clone(),
            threads: if o.serial { 1 } else { o.threads },
            opt: match o.opt {
                OptLevel::None => "none",
                OptLevel::NoConstSpan => "noconst",
                OptLevel::Full => "full",
            }
            .to_string(),
            phases,
            loops: analysis.loop_stats(),
            expansion: transformed.as_ref().map(|t| t.report.telemetry_stats()),
            vm: run_report
                .as_ref()
                .map(dse_telemetry::metrics::VmStats::from_report),
        };
        let mut text = metrics.to_json().to_string();
        text.push('\n');
        if dest == "-" {
            std::io::stdout().write_all(text.as_bytes())?;
        } else {
            std::fs::write(dest, text).map_err(|e| format!("{dest}: {e}"))?;
        }
    }

    Ok(exit)
}
