//! Expansion planning: given the DDG classifications, the points-to
//! results and the optimization level, decide
//!
//! * which data structures to **expand** (Table 1),
//! * which pointer types to **promote** to fat `{pointer, span}` records
//!   (Section 3.3.1), and
//! * which private indirect accesses can use a **constant span** instead
//!   (the Section 3.4 constant/copy-propagation optimization).
//!
//! With [`OptLevel::None`] everything is expanded and every pointer type is
//! promoted — the configuration measured in the paper's Figure 9a. With
//! [`OptLevel::Full`] only structures referenced by private accesses are
//! expanded, pointers whose referents all share one static size keep their
//! raw representation, and span bookkeeping is pruned (Figure 9b).

use crate::access::{access_root, AccessRoot};
use crate::classify::LoopClassification;
use dse_analysis::consteval::{type_contains_pointer, AllocSizeInfo};
use dse_analysis::{PointsTo, PtObj, VarId};
use dse_depprof::LoopDdg;
use dse_ir::sites::SiteTable;
use dse_lang::ast::*;
use dse_lang::types::Type;
use std::collections::{HashMap, HashSet};

/// Replica placement for expanded structures (paper Section 3.1, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutMode {
    /// Whole-structure replicas adjacent (the paper's default and the only
    /// mode that supports untyped heap blocks, recasts and interior
    /// pointers).
    #[default]
    Bonded,
    /// Per-element replication for *named arrays*: copies of each element
    /// adjacent (`T v[n]` becomes `T v[n][N]`). Fails — with the paper's
    /// own argument — whenever an expanded structure is an untyped heap
    /// block or is reached through a pointer.
    Interleaved,
}

/// How aggressively Section 3.4's overhead reductions are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No optimizations: expand every structure, promote every pointer
    /// type, keep every span store (paper Figure 9a).
    None,
    /// Alias-based pruning of expansion and promotion, but no constant-span
    /// discovery (ablation point between the paper's two configurations).
    NoConstSpan,
    /// All optimizations (paper Figure 9b).
    #[default]
    Full,
}

/// The per-site classification outcome, merged across parallelized loops
/// and keyed by AST expression id.
#[derive(Debug, Clone, Default)]
pub struct MergedClassification {
    /// Eids whose accesses are thread-private (either kind).
    pub private_eids: HashSet<u32>,
    /// Eids observed in any profiled loop (shared or private).
    pub seen_eids: HashSet<u32>,
}

/// A planning failure with explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expansion planning error: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// The complete expansion plan consumed by the transformation.
#[derive(Debug, Clone, Default)]
pub struct ExpansionPlan {
    /// Expansion factor N (thread count the program is transformed for).
    pub nthreads: u32,
    /// Objects to expand.
    pub expanded: HashSet<PtObj>,
    /// Pointer types (the full `Type::Pointer`) promoted to fat records.
    pub fat_types: HashSet<Type>,
    /// Integer variables promoted to carry spans (pointer-difference
    /// bookkeeping, Table 3 rules "Pointer arithmetic 2/3").
    pub fat_ints: HashSet<VarId>,
    /// Private access eids (redirected to the thread's copy).
    pub private_eids: HashSet<u32>,
    /// Per private indirect eid: the constant span in bytes, when all its
    /// referents share one statically known size.
    pub const_span: HashMap<u32, u64>,
    /// Whether the `p = p + 1` dead-span-store elimination is on.
    pub elide_same_pointer_span_stores: bool,
    /// Runtime-privatization baseline mode (Section 4.2.1): heap structures
    /// are NOT expanded; private indirect accesses are routed through the
    /// `__localize` runtime instead. Named variables are still expanded
    /// ("access control of global or stack variables \[is\] performed
    /// statically" — SpiceC).
    pub heap_localize: bool,
    /// Replica placement (Section 3.1).
    pub layout: LayoutMode,
}

impl ExpansionPlan {
    /// True if the named variable is expanded.
    pub fn var_expanded(&self, v: VarId) -> bool {
        self.expanded.contains(&PtObj::Var(v))
    }

    /// True if the allocation site (call eid) is expanded.
    pub fn alloc_expanded(&self, eid: u32) -> bool {
        self.expanded.contains(&PtObj::Alloc(eid))
    }

    /// True if the given pointer type is fat.
    pub fn is_fat(&self, ptr_ty: &Type) -> bool {
        self.fat_types.contains(ptr_ty)
    }
}

/// Merges per-loop classifications into eid-keyed sets.
///
/// # Errors
///
/// Fails if a site is private in one parallelized loop but shared in
/// another (the transform could not satisfy both).
pub fn merge_classifications(
    sites: &SiteTable,
    parts: &[(&LoopDdg, &LoopClassification)],
) -> Result<MergedClassification, PlanError> {
    let mut private = HashSet::new();
    let mut shared = HashSet::new();
    let mut seen = HashSet::new();
    for (_, cls) in parts {
        for (site, class) in &cls.site_class {
            let info = sites.info(*site);
            if info.eid == dse_lang::ast::NO_EID {
                continue;
            }
            seen.insert(info.eid);
            match class {
                crate::classify::SiteClass::Private => private.insert(info.eid),
                crate::classify::SiteClass::Shared => shared.insert(info.eid),
            };
        }
    }
    if let Some(conflict) = private.intersection(&shared).next() {
        return Err(PlanError(format!(
            "access (eid {conflict}) is private in one parallelized loop but shared in another"
        )));
    }
    Ok(MergedClassification {
        private_eids: private,
        seen_eids: seen,
    })
}

/// All distinct pointer types appearing in declarations or expressions.
fn all_pointer_types(program: &Program) -> HashSet<Type> {
    let mut out = HashSet::new();
    let mut add_ty = |ty: &Type| {
        let mut t = ty;
        loop {
            match t {
                Type::Pointer(inner) => {
                    out.insert(t.clone());
                    t = inner;
                }
                Type::Array(inner, _) => t = inner,
                _ => break,
            }
        }
    };
    for g in &program.globals {
        add_ty(&g.ty);
    }
    for f in &program.functions {
        add_ty(&f.ret_ty);
        for l in &f.locals {
            add_ty(&l.ty);
        }
    }
    let mut prog = program.clone();
    for f in &mut prog.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| {
            if let Some(t) = &e.ty {
                add_ty(t);
            }
            if let ExprKind::Cast(t, _) = &e.kind {
                add_ty(t);
            }
        });
    }
    for s in program.types.structs() {
        for fld in &s.fields {
            add_ty(&fld.ty);
        }
    }
    out
}

/// Collects "span flow" edges between pointer types: for every
/// assignment-like `dst = src` where `src` is not a span terminal (an
/// allocation call, an address-of, or a null literal), a fat `dst` type
/// forces `src`'s type fat. Also returns pointer-difference facts for
/// integer promotion.
struct SpanFlow {
    /// (dst pointer type, src pointer type) pairs.
    edges: Vec<(Type, Type)>,
    /// `dst = q ± i` facts: (dst pointer type, int var).
    arith_int_uses: Vec<(Type, VarId)>,
}

fn is_span_terminal(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call { name, .. } => {
            matches!(name.as_str(), "malloc" | "calloc" | "realloc")
        }
        ExprKind::AddrOf(_) => true,
        ExprKind::IntLit(_) => true,
        ExprKind::Var { .. } => false,
        ExprKind::Cast(_, inner) => is_span_terminal(inner),
        // Array decay names an object whose size is static.
        _ => matches!(e.ty.as_ref(), Some(Type::Array(..))),
    }
}

/// The source expression whose span would be copied for `src` (skipping
/// pointer arithmetic and casts).
fn span_root(e: &Expr) -> &Expr {
    match &e.kind {
        ExprKind::Cast(_, inner) => span_root(inner),
        ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
            if l.ty.as_ref().is_some_and(|t| t.decayed().is_pointer()) {
                span_root(l)
            } else {
                span_root(r)
            }
        }
        _ => e,
    }
}

fn int_var_of(e: &Expr, func: usize) -> Option<VarId> {
    match &e.kind {
        ExprKind::Var {
            binding: Some(b), ..
        } if e.ty.as_ref().is_some_and(|t| t.is_integer()) => Some(match b {
            VarBinding::Global(g) => VarId::Global(*g),
            VarBinding::Local(s) => VarId::Local(func, *s),
        }),
        _ => None,
    }
}

fn collect_span_flow(program: &Program) -> SpanFlow {
    let mut sf = SpanFlow {
        edges: Vec::new(),
        arith_int_uses: Vec::new(),
    };
    let mut prog = program.clone();
    let sigs: Vec<(String, Vec<Type>, Type)> = program
        .functions
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                f.params.iter().map(|p| p.ty.clone()).collect(),
                f.ret_ty.clone(),
            )
        })
        .collect();
    for (fi, f) in prog.functions.iter_mut().enumerate() {
        let ret_ty = f.ret_ty.clone();
        // Returns: the function's return type receives the expr's span.
        collect_returns(&f.body, &mut |e: &Expr| {
            record_flow(&mut sf, fi, &ret_ty, e);
        });
        visit_exprs_in_block(&mut f.body, &mut |e| match &e.kind {
            ExprKind::Assign {
                op: AssignOp::Set,
                lhs,
                rhs,
            } => {
                if let Some(lt) = &lhs.ty {
                    record_flow(&mut sf, fi, lt, rhs);
                }
            }
            ExprKind::Call { name, args } => {
                if let Some((_, params, _)) = sigs.iter().find(|(n, _, _)| n == name) {
                    for (a, pt) in args.iter().zip(params) {
                        record_flow(&mut sf, fi, pt, a);
                    }
                }
            }
            _ => {}
        });
        for s in collect_decl_inits(&f.body) {
            let (ty, init) = s;
            record_flow(&mut sf, fi, &ty, &init);
        }
    }
    sf
}

fn record_flow(sf: &mut SpanFlow, func: usize, dst_ty: &Type, src: &Expr) {
    let dst_ty = dst_ty.decayed();
    if !dst_ty.is_pointer() {
        // Pointer difference: i = p - q.
        if dst_ty.is_integer() {
            if let ExprKind::Binary(BinOp::Sub, l, r) = &src.kind {
                if l.ty.as_ref().is_some_and(|t| t.decayed().is_pointer())
                    && r.ty.as_ref().is_some_and(|t| t.decayed().is_pointer())
                {
                    // The destination must be a plain int variable for
                    // promotion; the transform validates this later.
                    // Record under both operand types.
                    // The int var is unknown here (dst is a type only); the
                    // caller of record_flow for assignments knows the lhs —
                    // handled in collect via diff_defs in the Assign arm.
                }
            }
        }
        return;
    }
    let root = span_root(src);
    if is_span_terminal(root) {
        return;
    }
    if let Some(st) = root.ty.as_ref() {
        let st = st.decayed();
        if st.is_pointer() {
            sf.edges.push((dst_ty.clone(), st));
        }
    }
    // dst = q ± i with a variable i: i may need a span.
    if let ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) = &src.kind {
        let (ptr_side, int_side) = if l.ty.as_ref().is_some_and(|t| t.decayed().is_pointer()) {
            (l, r)
        } else {
            (r, l)
        };
        let _ = ptr_side;
        if let Some(v) = int_var_of(int_side, func) {
            sf.arith_int_uses.push((dst_ty.clone(), v));
        }
    }
}

fn collect_returns(block: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::Return(Some(e)) => f(e),
            StmtKind::If { then, els, .. } => {
                collect_returns(then, f);
                if let Some(b) = els {
                    collect_returns(b, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                collect_returns(body, f)
            }
            StmtKind::For { body, .. } => collect_returns(body, f),
            StmtKind::Block(b) => collect_returns(b, f),
            _ => {}
        }
    }
}

fn collect_decl_inits(block: &Block) -> Vec<(Type, Expr)> {
    let mut out = Vec::new();
    fn go(block: &Block, out: &mut Vec<(Type, Expr)>) {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::Decl {
                    ty, init: Some(e), ..
                } => out.push((ty.clone(), e.clone())),
                StmtKind::If { then, els, .. } => {
                    go(then, out);
                    if let Some(b) = els {
                        go(b, out);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => go(body, out),
                StmtKind::For { init, body, .. } => {
                    if let Some(i) = init {
                        if let StmtKind::Decl {
                            ty, init: Some(e), ..
                        } = &i.kind
                        {
                            out.push((ty.clone(), e.clone()));
                        }
                    }
                    go(body, out);
                }
                StmtKind::Block(b) => go(b, out),
                _ => {}
            }
        }
    }
    go(block, &mut out);
    out
}

/// Pointer-difference definitions `i = p - q` (assignments and
/// declaration initializers), as (int var, pointee pointer type) pairs.
fn collect_diff_defs(program: &Program) -> Vec<(VarId, Type)> {
    fn diff_operand_types(rhs: &Expr) -> Option<(Type, Type)> {
        let ExprKind::Binary(BinOp::Sub, l, r) = &rhs.kind else {
            return None;
        };
        let lt = l.ty.as_ref()?.decayed();
        let rt = r.ty.as_ref()?.decayed();
        (lt.is_pointer() && rt.is_pointer()).then_some((lt, rt))
    }
    fn scan_block(block: &Block, fi: usize, out: &mut Vec<(VarId, Type)>) {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::Decl {
                    init: Some(e),
                    slot: Some(slot),
                    ty,
                    ..
                } if ty.is_integer() => {
                    if let Some((lt, _)) = diff_operand_types(e) {
                        out.push((VarId::Local(fi, *slot), lt));
                    }
                }
                StmtKind::If { then, els, .. } => {
                    scan_block(then, fi, out);
                    if let Some(b) = els {
                        scan_block(b, fi, out);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    scan_block(body, fi, out)
                }
                StmtKind::For { init, body, .. } => {
                    if let Some(i) = init {
                        if let StmtKind::Decl {
                            init: Some(e),
                            slot: Some(slot),
                            ty,
                            ..
                        } = &i.kind
                        {
                            if ty.is_integer() {
                                if let Some((lt, _)) = diff_operand_types(e) {
                                    out.push((VarId::Local(fi, *slot), lt));
                                }
                            }
                        }
                    }
                    scan_block(body, fi, out);
                }
                StmtKind::Block(b) => scan_block(b, fi, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    let mut prog = program.clone();
    for (fi, f) in prog.functions.iter_mut().enumerate() {
        scan_block(&f.body, fi, &mut out);
        visit_exprs_in_block(&mut f.body, &mut |e| {
            if let ExprKind::Assign {
                op: AssignOp::Set,
                lhs,
                rhs,
            } = &e.kind
            {
                if diff_operand_types(rhs).is_some() {
                    if let Some(v) = int_var_of(lhs, fi) {
                        if let ExprKind::Binary(BinOp::Sub, l, _) = &rhs.kind {
                            if let Some(t) = l.ty.as_ref() {
                                out.push((v, t.decayed()));
                            }
                        }
                    }
                }
            }
        });
    }
    out
}

/// Inputs to [`build_plan`].
pub struct PlanInputs<'a> {
    /// The original typed program.
    pub program: &'a Program,
    /// Serial-lowering site table (maps sites to eids).
    pub sites: &'a SiteTable,
    /// The DDG + classification of every loop being parallelized.
    pub loops: Vec<(&'a LoopDdg, &'a LoopClassification)>,
    /// Points-to results.
    pub pt: &'a PointsTo,
    /// Allocation-size facts (from [`dse_analysis::consteval::alloc_size_infos`]).
    pub alloc_sizes: &'a HashMap<u32, AllocSizeInfo>,
    /// Optimization level.
    pub opt: OptLevel,
    /// Expansion factor N.
    pub nthreads: u32,
    /// Build the runtime-privatization baseline plan instead (see
    /// [`ExpansionPlan::heap_localize`]).
    pub heap_localize: bool,
    /// Replica placement (Section 3.1).
    pub layout: LayoutMode,
}

/// Builds the expansion plan.
///
/// # Errors
///
/// Fails on classification conflicts or unsupported shapes (e.g. a function
/// parameter that would need expansion).
pub fn build_plan(inp: &PlanInputs<'_>) -> Result<ExpansionPlan, PlanError> {
    let merged = merge_classifications(inp.sites, &inp.loops)?;
    let program = inp.program;

    // Induction variables of candidate loops must never be expanded.
    let mut excluded_vars: HashSet<VarId> = HashSet::new();
    let cands =
        dse_ir::loops::find_candidate_loops(program).map_err(|e| PlanError(e.to_string()))?;
    for c in &cands {
        excluded_vars.insert(VarId::Local(c.func as usize, c.induction_slot));
    }

    // ---- expansion set ----------------------------------------------------
    let mut expanded: HashSet<PtObj> = HashSet::new();
    match inp.opt {
        OptLevel::None => {
            // Expand everything: all named variables (except parameters and
            // induction variables) and all allocation sites.
            for (gi, _) in program.globals.iter().enumerate() {
                expanded.insert(PtObj::Var(VarId::Global(gi)));
            }
            for (fi, f) in program.functions.iter().enumerate() {
                for (slot, l) in f.locals.iter().enumerate() {
                    if !l.is_param {
                        expanded.insert(PtObj::Var(VarId::Local(fi, slot)));
                    }
                }
            }
            for eid in inp.alloc_sizes.keys() {
                expanded.insert(PtObj::Alloc(*eid));
            }
        }
        OptLevel::NoConstSpan | OptLevel::Full => {
            // Only structures referenced by private accesses (Section 3.4).
            for &eid in &merged.private_eids {
                if inp.heap_localize {
                    // Baseline: only named variables reached directly are
                    // privatized at compile time; heap accesses go through
                    // the runtime. Pointer-reached variables cannot be
                    // handled by either side.
                    if inp.pt.site_is_indirect(eid) {
                        for obj in inp.pt.objects_of_site(eid) {
                            if let PtObj::Var(v) = obj {
                                return Err(PlanError(format!(
                                    "runtime privatization cannot handle private \
                                     pointer accesses to the address-taken variable \
                                     {v:?} (eid {eid})"
                                )));
                            }
                        }
                        continue;
                    }
                }
                for obj in inp.pt.objects_of_site(eid) {
                    expanded.insert(obj);
                }
            }
        }
    }
    if inp.heap_localize {
        expanded.retain(|o| matches!(o, PtObj::Var(_)));
    }
    for v in &excluded_vars {
        expanded.remove(&PtObj::Var(*v));
    }
    // Parameters cannot be expanded (they are caller-initialized scalars).
    for obj in &expanded {
        if let PtObj::Var(VarId::Local(fi, slot)) = obj {
            if program.functions[*fi].locals[*slot].is_param {
                return Err(PlanError(format!(
                    "parameter `{}` of `{}` would need expansion; pass a pointer instead",
                    program.functions[*fi].locals[*slot].name, program.functions[*fi].name
                )));
            }
        }
    }

    // ---- constant spans per private indirect site ---------------------------
    // Interleaved layout (Fig. 2b): only named variables whose accesses
    // are all direct can interleave — the paper's own limitation.
    if inp.layout == LayoutMode::Interleaved {
        for obj in &expanded {
            match obj {
                PtObj::Alloc(eid) => {
                    return Err(PlanError(format!(
                        "interleaved layout: heap allocation site (eid {eid}) has no \
                         static element type to interleave by (paper §3.1)"
                    )));
                }
                PtObj::Var(v) => {
                    let ty = match v {
                        VarId::Global(g) => &program.globals[*g].ty,
                        VarId::Local(f, s) => &program.functions[*f].locals[*s].ty,
                    };
                    if matches!(ty, Type::Struct(_)) {
                        return Err(PlanError(format!(
                            "interleaved layout: per-field interleaving of struct \
                             variable {v:?} is not supported"
                        )));
                    }
                }
            }
        }
        for &eid in &merged.private_eids {
            if inp.pt.site_is_indirect(eid)
                && inp
                    .pt
                    .objects_of_site(eid)
                    .iter()
                    .any(|o| expanded.contains(o))
            {
                return Err(PlanError(format!(
                    "interleaved layout: access (eid {eid}) reaches an expanded \
                     structure through a pointer; per-element replicas are not \
                     contiguous, so span redirection is impossible (paper §3.1)"
                )));
            }
        }
    }

    // A span may be treated as a compile-time constant only when it cannot
    // change under pointer promotion (fat pointers grow memory layouts).
    let object_const_size = |obj: &PtObj| -> Option<u64> {
        match obj {
            PtObj::Alloc(eid) => {
                let info = inp.alloc_sizes.get(eid)?;
                if info.promotion_sensitive {
                    None
                } else {
                    info.const_size
                }
            }
            PtObj::Var(v) => {
                let ty = match v {
                    VarId::Global(g) => &program.globals[*g].ty,
                    VarId::Local(f, s) => &program.functions[*f].locals[*s].ty,
                };
                if type_contains_pointer(ty, &program.types) {
                    None
                } else {
                    Some(program.types.size_of(ty))
                }
            }
        }
    };

    let mut const_span: HashMap<u32, u64> = HashMap::new();
    let mut dynamic_span_eids: HashSet<u32> = HashSet::new();
    if inp.heap_localize {
        // No spans needed: private indirect accesses use the runtime.
        return finish(
            inp,
            expanded,
            HashSet::new(),
            HashSet::new(),
            merged,
            const_span,
        );
    }
    for &eid in &merged.private_eids {
        if !inp.pt.site_is_indirect(eid) {
            continue;
        }
        let objs = inp.pt.objects_of_site(eid);
        let touches_expanded = objs.iter().any(|o| expanded.contains(o));
        if !touches_expanded {
            continue;
        }
        let sizes: Vec<Option<u64>> = objs.iter().map(object_const_size).collect();
        let all_same_const = inp.opt == OptLevel::Full
            && !sizes.is_empty()
            && sizes.iter().all(|s| s.is_some() && *s == sizes[0]);
        if all_same_const {
            const_span.insert(eid, sizes[0].expect("checked above"));
        } else {
            dynamic_span_eids.insert(eid);
        }
    }

    // ---- fat pointer types -------------------------------------------------
    let mut fat_types: HashSet<Type> = HashSet::new();
    match inp.opt {
        OptLevel::None => {
            fat_types = all_pointer_types(program);
        }
        OptLevel::NoConstSpan | OptLevel::Full => {
            // Seed with the base-pointer types of dynamic-span sites.
            // The base type is the site expression's addressing pointer: we
            // recover it from the AST by eid.
            let base_tys = base_pointer_types_of_sites(program, &dynamic_span_eids);
            fat_types.extend(base_tys);
            // `realloc` of an expanded structure must move each thread's
            // copy, which requires the old per-copy span at run time: the
            // pointer being reallocated must be promoted.
            fat_types.extend(expanded_realloc_arg_types(program, &expanded));
            // Close over span flow.
            let sf = collect_span_flow(program);
            let diffs = collect_diff_defs(program);
            let mut fat_ints: HashSet<VarId> = HashSet::new();
            loop {
                let before = (fat_types.len(), fat_ints.len());
                for (dst, src) in &sf.edges {
                    if fat_types.contains(dst) {
                        fat_types.insert(src.clone());
                    }
                }
                for (dst_ty, iv) in &sf.arith_int_uses {
                    if fat_types.contains(dst_ty) && diffs.iter().any(|(v, _)| v == iv) {
                        fat_ints.insert(*iv);
                    }
                }
                for (iv, pty) in &diffs {
                    if fat_ints.contains(iv) {
                        fat_types.insert(pty.clone());
                    }
                }
                if (fat_types.len(), fat_ints.len()) == before {
                    return finish(inp, expanded, fat_types, fat_ints, merged, const_span);
                }
            }
        }
    }
    let sf = collect_span_flow(program);
    let diffs = collect_diff_defs(program);
    // With OptLevel::None every pointer is already fat; promote every
    // difference integer too.
    let fat_ints: HashSet<VarId> = diffs.iter().map(|(v, _)| *v).collect();
    let _ = sf;
    finish(inp, expanded, fat_types, fat_ints, merged, const_span)
}

fn finish(
    inp: &PlanInputs<'_>,
    expanded: HashSet<PtObj>,
    fat_types: HashSet<Type>,
    fat_ints: HashSet<VarId>,
    merged: MergedClassification,
    const_span: HashMap<u32, u64>,
) -> Result<ExpansionPlan, PlanError> {
    Ok(ExpansionPlan {
        nthreads: inp.nthreads,
        expanded,
        fat_types,
        fat_ints,
        private_eids: merged.private_eids,
        const_span,
        elide_same_pointer_span_stores: inp.opt != OptLevel::None,
        heap_localize: inp.heap_localize,
        layout: inp.layout,
    })
}

/// The decayed types of pointers passed to `realloc` calls whose
/// allocation site is expanded.
fn expanded_realloc_arg_types(program: &Program, expanded: &HashSet<PtObj>) -> HashSet<Type> {
    let mut out = HashSet::new();
    let mut prog = program.clone();
    for f in &mut prog.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| {
            if let ExprKind::Call { name, args } = &e.kind {
                if name == "realloc" && expanded.contains(&PtObj::Alloc(e.eid)) {
                    if let Some(t) = args.first().and_then(|a| a.ty.as_ref()) {
                        let t = t.decayed();
                        if t.is_pointer() {
                            out.insert(t);
                        }
                    }
                }
            }
        });
    }
    out
}

/// The pointer types through which the given access eids dereference.
fn base_pointer_types_of_sites(program: &Program, eids: &HashSet<u32>) -> HashSet<Type> {
    let mut out = HashSet::new();
    if eids.is_empty() {
        return out;
    }
    let mut prog = program.clone();
    for f in &mut prog.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| {
            if !eids.contains(&e.eid) {
                return;
            }
            if let Some(AccessRoot::Indirect(base)) = access_root(e) {
                if let Some(t) = &base.ty {
                    let t = t.decayed();
                    if t.is_pointer() {
                        out.insert(t);
                    }
                }
            }
        });
    }
    out
}
