//! Access classes (Definition 4) and thread-private classification
//! (Definition 5).
//!
//! Loop-independent dependences are treated as an equivalence relation: its
//! classes partition the loop's memory accesses, and a whole class is
//! *thread-private* iff
//!
//! 1. no member is an upwards-exposed load or a downwards-exposed store,
//! 2. no member is involved in a loop-carried flow dependence, and
//! 3. at least one member is involved in a loop-carried anti- or output
//!    dependence.
//!
//! Everything else is *shared*. The classification also decides the
//! parallelization mode: a loop whose shared accesses still carry
//! dependences needs DOACROSS ordering; otherwise it is DOALL.

use dse_depprof::{DepKind, LoopDdg};
use dse_ir::loops::ParMode;
use dse_ir::sites::SiteId;
use std::collections::{HashMap, HashSet};

/// Union-find over site ids.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: HashMap<SiteId, SiteId>,
}

impl UnionFind {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds the representative of `x` (path-compressing).
    pub fn find(&mut self, x: SiteId) -> SiteId {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    /// Merges the classes of `a` and `b`.
    pub fn union(&mut self, a: SiteId, b: SiteId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// How a site's access class was judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Member of a thread-private access class: redirected to the current
    /// thread's copy.
    Private,
    /// Shared access: goes to copy 0.
    Shared,
}

/// The classification of one candidate loop's accesses.
#[derive(Debug, Clone)]
pub struct LoopClassification {
    /// Loop label.
    pub label: String,
    /// Class representative for each site.
    pub class_of: HashMap<SiteId, SiteId>,
    /// Classification per site.
    pub site_class: HashMap<SiteId, SiteClass>,
    /// Sites involved in *any* loop-carried dependence.
    pub carried_sites: HashSet<SiteId>,
    /// Shared sites involved in loop-carried dependences — these force
    /// DOACROSS ordering and define the synchronized region.
    pub shared_carried_sites: HashSet<SiteId>,
    /// Chosen parallelization mode.
    pub mode: ParMode,
}

impl LoopClassification {
    /// The private sites.
    pub fn private_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.site_class
            .iter()
            .filter(|(_, c)| **c == SiteClass::Private)
            .map(|(s, _)| *s)
    }

    /// True if the given site is classified private.
    pub fn is_private(&self, site: SiteId) -> bool {
        self.site_class.get(&site) == Some(&SiteClass::Private)
    }

    /// Figure 8 breakdown of this loop's *dynamic* accesses:
    /// `(free_of_carried, expandable, with_carried)` fractions of the total.
    pub fn access_breakdown(&self, ddg: &LoopDdg) -> AccessBreakdown {
        let mut free = 0u64;
        let mut expandable = 0u64;
        let mut carried = 0u64;
        for (site, count) in &ddg.site_counts {
            if !self.carried_sites.contains(site) {
                free += count;
            } else if self.is_private(*site) {
                expandable += count;
            } else {
                carried += count;
            }
        }
        AccessBreakdown {
            free,
            expandable,
            carried,
        }
    }
}

/// Dynamic-access breakdown in the categories of the paper's Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessBreakdown {
    /// Accesses free of any loop-carried dependence.
    pub free: u64,
    /// Accesses in thread-private (expandable) classes.
    pub expandable: u64,
    /// Remaining accesses involved in loop-carried dependences.
    pub carried: u64,
}

impl AccessBreakdown {
    /// Total dynamic accesses.
    pub fn total(&self) -> u64 {
        self.free + self.expandable + self.carried
    }

    /// `(free, expandable, carried)` as fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.free as f64 / t,
            self.expandable as f64 / t,
            self.carried as f64 / t,
        )
    }
}

/// Classifies one loop's DDG per Definitions 4 and 5.
pub fn classify_loop(ddg: &LoopDdg) -> LoopClassification {
    // 1. Access classes: union over loop-independent dependences.
    let mut uf = UnionFind::new();
    for site in ddg.site_counts.keys() {
        uf.find(*site);
    }
    for e in &ddg.edges {
        if !e.carried {
            uf.union(e.src, e.dst);
        }
    }
    // 2. Gather per-class facts.
    let all_sites: Vec<SiteId> = ddg.site_counts.keys().copied().collect();
    let carried_flow = ddg.sites_in_carried(&[DepKind::Flow]);
    let carried_anti_out = ddg.sites_in_carried(&[DepKind::Anti, DepKind::Output]);
    let carried_sites: HashSet<SiteId> = carried_flow.union(&carried_anti_out).copied().collect();

    #[derive(Default)]
    struct ClassFacts {
        exposed: bool,
        carried_flow: bool,
        carried_anti_out: bool,
    }
    let mut facts: HashMap<SiteId, ClassFacts> = HashMap::new();
    for &s in &all_sites {
        let rep = uf.find(s);
        let f = facts.entry(rep).or_default();
        if ddg.upward_exposed.contains(&s) || ddg.downward_exposed.contains(&s) {
            f.exposed = true;
        }
        if carried_flow.contains(&s) {
            f.carried_flow = true;
        }
        if carried_anti_out.contains(&s) {
            f.carried_anti_out = true;
        }
    }
    // 3. Definition 5.
    let mut class_of = HashMap::new();
    let mut site_class = HashMap::new();
    for &s in &all_sites {
        let rep = uf.find(s);
        class_of.insert(s, rep);
        let f = &facts[&rep];
        let private = !f.exposed && !f.carried_flow && f.carried_anti_out;
        site_class.insert(
            s,
            if private {
                SiteClass::Private
            } else {
                SiteClass::Shared
            },
        );
    }
    // 4. Mode: shared sites still carrying dependences force DOACROSS.
    let shared_carried_sites: HashSet<SiteId> = carried_sites
        .iter()
        .filter(|s| site_class.get(s) == Some(&SiteClass::Shared))
        .copied()
        .collect();
    let mode = if shared_carried_sites.is_empty() {
        ParMode::DoAll
    } else {
        ParMode::DoAcross
    };
    LoopClassification {
        label: ddg.label.clone(),
        class_of,
        site_class,
        carried_sites,
        shared_carried_sites,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_depprof::DepEdge;

    fn edge(src: SiteId, dst: SiteId, kind: DepKind, carried: bool) -> DepEdge {
        DepEdge {
            src,
            dst,
            kind,
            carried,
        }
    }

    fn ddg_with(edges: Vec<DepEdge>, sites: &[SiteId], up: &[SiteId], down: &[SiteId]) -> LoopDdg {
        LoopDdg {
            label: "t".into(),
            edges: edges.into_iter().collect(),
            upward_exposed: up.iter().copied().collect(),
            downward_exposed: down.iter().copied().collect(),
            site_counts: sites.iter().map(|s| (*s, 10)).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new();
        uf.union(1, 2);
        uf.union(2, 3);
        assert_eq!(uf.find(1), uf.find(3));
        assert_ne!(uf.find(1), uf.find(4));
    }

    /// The paper's canonical privatizable pattern: write (0) then read (1)
    /// each iteration -> independent flow 0->1, carried anti 1->0, carried
    /// output 0->0.
    #[test]
    fn scratch_class_is_private() {
        let ddg = ddg_with(
            vec![
                edge(0, 1, DepKind::Flow, false),
                edge(1, 0, DepKind::Anti, true),
                edge(0, 0, DepKind::Output, true),
            ],
            &[0, 1],
            &[],
            &[],
        );
        let c = classify_loop(&ddg);
        assert!(c.is_private(0));
        assert!(c.is_private(1));
        assert_eq!(c.mode, ParMode::DoAll);
    }

    /// An accumulator: carried flow makes the class shared and the loop
    /// DOACROSS.
    #[test]
    fn accumulator_class_is_shared_doacross() {
        let ddg = ddg_with(
            vec![
                edge(0, 1, DepKind::Flow, true),
                edge(1, 0, DepKind::Anti, true),
                edge(0, 0, DepKind::Output, true),
                edge(0, 1, DepKind::Flow, false),
            ],
            &[0, 1],
            &[1],
            &[0],
        );
        let c = classify_loop(&ddg);
        assert!(!c.is_private(0));
        assert!(!c.is_private(1));
        assert_eq!(c.mode, ParMode::DoAcross);
        assert!(c.shared_carried_sites.contains(&0));
    }

    /// Condition 1: an upwards-exposed load poisons its whole class.
    #[test]
    fn exposure_poisons_class() {
        let ddg = ddg_with(
            vec![
                edge(0, 1, DepKind::Flow, false),
                edge(1, 0, DepKind::Anti, true),
                edge(0, 0, DepKind::Output, true),
            ],
            &[0, 1],
            &[1],
            &[],
        );
        let c = classify_loop(&ddg);
        assert!(
            !c.is_private(0),
            "exposure of the load poisons the store too"
        );
        assert!(!c.is_private(1));
    }

    /// Condition 3: a class with no carried anti/output at all has nothing
    /// to expand (no contention) — not private.
    #[test]
    fn read_only_class_is_shared_but_loop_doall() {
        let ddg = ddg_with(vec![], &[5], &[5], &[]);
        let c = classify_loop(&ddg);
        assert!(!c.is_private(5));
        assert_eq!(c.mode, ParMode::DoAll, "read-only loops stay DOALL");
    }

    /// The paper's L1-L4 example: an ambiguous store makes one class with a
    /// private-looking and a shared-looking access; the equivalence forces a
    /// single decision.
    #[test]
    fn transitive_merge_through_independent_deps() {
        // Sites: 0 = *p store, 1 = a[i] load of *p (independent flow),
        // 2 = a[i] store with carried flow to 3.
        let ddg = ddg_with(
            vec![
                edge(0, 1, DepKind::Flow, false),
                edge(2, 1, DepKind::Output, false), // merges 2 into the class
                edge(2, 3, DepKind::Flow, true),
                edge(0, 0, DepKind::Output, true),
            ],
            &[0, 1, 2, 3],
            &[],
            &[],
        );
        let c = classify_loop(&ddg);
        // 0,1,2 share a class; 2 has carried flow -> all shared.
        assert!(!c.is_private(0));
        assert!(!c.is_private(1));
        assert!(!c.is_private(2));
    }

    #[test]
    fn breakdown_fractions() {
        let mut ddg = ddg_with(
            vec![
                edge(0, 1, DepKind::Flow, false),
                edge(1, 0, DepKind::Anti, true),
                edge(0, 0, DepKind::Output, true),
                edge(2, 3, DepKind::Flow, true),
            ],
            &[0, 1, 2, 3, 4],
            &[],
            &[],
        );
        ddg.site_counts.insert(4, 70); // free site
        let c = classify_loop(&ddg);
        let b = c.access_breakdown(&ddg);
        assert_eq!(b.free, 70);
        assert_eq!(b.expandable, 20); // sites 0,1 at 10 each
        assert_eq!(b.carried, 20); // sites 2,3
        let (f, e, cr) = b.fractions();
        assert!((f - 70.0 / 110.0).abs() < 1e-9);
        assert!((e - 20.0 / 110.0).abs() < 1e-9);
        assert!((cr - 20.0 / 110.0).abs() < 1e-9);
    }
}
