//! # dse-core — General Data Structure Expansion for Multi-threading
//!
//! The paper's primary contribution (Yu, Ko, Li — PLDI 2013), implemented
//! over the `dse-lang`/`dse-ir`/`dse-runtime` substrate:
//!
//! * [`classify`] — access classes over loop-independent dependences
//!   (Definition 4) and the thread-private test (Definition 5).
//! * [`plan`] — expansion/promotion decisions, including the Section 3.4
//!   overhead reductions (alias-based pruning, constant spans).
//! * [`xform`] — the transformation itself: type expansion (Table 1),
//!   pointer promotion with span maintenance (Figures 5/6, Table 3), and
//!   access redirection (Table 2).
//! * [`Analysis`] — the end-to-end driver: profile a program's candidate
//!   loops, classify them, and produce the executables the paper
//!   evaluates: the transformed parallel program (run on N threads, or on
//!   one thread for the Figure 9 overhead study) and the SpiceC-style
//!   runtime-privatization baseline (Figures 10/13).
//!
//! ```
//! use dse_core::{Analysis, OptLevel};
//! use dse_runtime::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), dse_core::DseError> {
//! let src = "
//!     int main() {
//!       int *out; out = malloc(100 * sizeof(int));
//!       int *scratch; scratch = malloc(16 * sizeof(int));
//!       #pragma candidate hot
//!       for (int i = 0; i < 100; i++) {
//!         for (int k = 0; k < 16; k++) { scratch[k] = i + k; }
//!         int s; s = 0;
//!         for (int k = 0; k < 16; k++) { s += scratch[k]; }
//!         out[i] = s;
//!       }
//!       long total; total = 0;
//!       for (int i = 0; i < 100; i++) { total += out[i]; }
//!       out_long(total);
//!       free(out); free(scratch);
//!       return 0;
//!     }";
//! let analysis = Analysis::from_source(src, VmConfig::default())?;
//! // `scratch` is reused every iteration: expansion privatizes it.
//! let t = analysis.transform(OptLevel::Full, 4)?;
//! assert!(t.report.privatized_structures() >= 1);
//! let mut vm = Vm::new(t.parallel, VmConfig { nthreads: 4, ..Default::default() })?;
//! vm.run()?;
//! assert_eq!(vm.outputs_int().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod cache;
pub mod classify;
pub mod phases;
pub mod plan;
pub mod xform;

pub use cache::{ArtifactStore, CacheOutcome, PhaseOutcome, Trace};
pub use classify::{classify_loop, AccessBreakdown, LoopClassification, SiteClass};
pub use phases::{AnalysisArt, Pipeline, RegArt, TransformArt};
pub use plan::{build_plan, ExpansionPlan, LayoutMode, OptLevel, PlanError, PlanInputs};
pub use xform::{expand_program, ExpansionReport, XformError, XformResult};

use dse_depprof::ProfileResult;
use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_lang::ast::Program;
use dse_runtime::VmConfig;
use dse_telemetry::{PhaseSpan, PhaseTimer};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Any failure in the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DseError(pub String);

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DseError {}

macro_rules! from_err {
    ($t:ty) => {
        impl From<$t> for DseError {
            fn from(e: $t) -> Self {
                DseError(e.to_string())
            }
        }
    };
}
from_err!(dse_lang::LangError);
from_err!(dse_ir::lower::LowerError);
from_err!(dse_ir::loops::CandidateError);
from_err!(dse_runtime::VmError);
from_err!(dse_ir::RegLowerError);
from_err!(PlanError);
from_err!(XformError);

/// The profiled-and-classified state of one program: everything needed to
/// produce transformed executables at any optimization level and thread
/// count.
pub struct Analysis {
    /// The original typed program.
    pub program: Program,
    /// Serial lowering (with profiler loop marks).
    pub serial: CompiledProgram,
    /// Per-candidate-loop dependence graphs from the profiling run.
    pub profile: ProfileResult,
    /// Per-candidate-loop classifications, parallel to `profile.loops`.
    pub classifications: Vec<LoopClassification>,
    /// Points-to results.
    pub pt: dse_analysis::PointsTo,
    /// Allocation-size facts.
    pub alloc_sizes: HashMap<u32, dse_analysis::consteval::AllocSizeInfo>,
    /// Wall-clock spans of the analysis phases (parse, lower, profile,
    /// classify), with size stats per phase.
    pub phases: Vec<PhaseSpan>,
}

/// A transformed program ready to execute.
#[derive(Debug)]
pub struct Transformed {
    /// The transformed AST (inspectable).
    pub program: Program,
    /// Parallel lowering: candidate loops scheduled per their
    /// classification (DOALL / DOACROSS with sync windows).
    pub parallel: CompiledProgram,
    /// Expansion accounting (Table 5's privatized-structure counts).
    pub report: ExpansionReport,
    /// Chosen mode per loop label.
    pub modes: HashMap<String, ParMode>,
    /// The expansion plan the transform executed (inspectable; consumed by
    /// the `dse-verify` invariant checker).
    pub plan: ExpansionPlan,
    /// Per candidate-loop label: the DOACROSS `Wait`/`Post` window over
    /// transformed top-level body statement indices.
    pub sync_windows: HashMap<String, Option<(usize, usize)>>,
    /// Transformed expression id → original expression id for rebuilt
    /// access/allocation nodes (see [`XformResult::eid_provenance`]).
    pub eid_provenance: HashMap<u32, u32>,
    /// Wall-clock spans of the transform phases (plan, xform).
    pub phases: Vec<PhaseSpan>,
}

impl Analysis {
    /// Compiles `source`, profiles it under `profile_config` (which supplies
    /// the profiling inputs), and classifies every candidate loop.
    ///
    /// # Errors
    ///
    /// Propagates frontend, lowering and VM errors.
    pub fn from_source(source: &str, profile_config: VmConfig) -> Result<Analysis, DseError> {
        let (program, parse_span) = phases::parse_phase(source)?;
        let (serial, lower_span) = phases::lower_phase(&program)?;
        let (profile, profile_span) = phases::profile_phase(serial.clone(), profile_config)?;
        let (classified, classify_span) = phases::classify_phase(&program, &profile);
        Ok(phases::assemble_analysis(
            program,
            serial,
            profile,
            classified,
            vec![parse_span, lower_span, profile_span, classify_span],
        ))
    }

    /// The classification for a loop label.
    pub fn classification(&self, label: &str) -> Option<&LoopClassification> {
        self.classifications.iter().find(|c| c.label == label)
    }

    /// Builds the expansion plan at the given optimization level and
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates planning failures.
    pub fn plan(&self, opt: OptLevel, nthreads: u32) -> Result<ExpansionPlan, DseError> {
        self.plan_with_layout(opt, nthreads, LayoutMode::Bonded)
    }

    /// Like [`Analysis::plan`] with an explicit replica layout.
    ///
    /// # Errors
    ///
    /// Propagates planning failures — in particular, the interleaved
    /// layout's structural limitations (paper Section 3.1).
    pub fn plan_with_layout(
        &self,
        opt: OptLevel,
        nthreads: u32,
        layout: LayoutMode,
    ) -> Result<ExpansionPlan, DseError> {
        let loops: Vec<_> = self
            .profile
            .loops
            .iter()
            .zip(&self.classifications)
            .collect();
        Ok(build_plan(&PlanInputs {
            program: &self.program,
            sites: &self.serial.sites,
            loops,
            pt: &self.pt,
            alloc_sizes: &self.alloc_sizes,
            opt,
            nthreads,
            heap_localize: false,
            layout,
        })?)
    }

    /// Builds the runtime-privatization baseline plan: named variables are
    /// privatized statically (like the expansion), heap accesses are routed
    /// through the `__localize` runtime (SpiceC's copy-in/commit scheme).
    ///
    /// # Errors
    ///
    /// Propagates planning failures.
    pub fn baseline_plan(&self, nthreads: u32) -> Result<ExpansionPlan, DseError> {
        let loops: Vec<_> = self
            .profile
            .loops
            .iter()
            .zip(&self.classifications)
            .collect();
        Ok(build_plan(&PlanInputs {
            program: &self.program,
            sites: &self.serial.sites,
            loops,
            pt: &self.pt,
            alloc_sizes: &self.alloc_sizes,
            opt: OptLevel::Full,
            nthreads,
            heap_localize: true,
            layout: LayoutMode::Bonded,
        })?)
    }

    /// Transforms the program (expansion + promotion + redirection) and
    /// lowers it with parallel scheduling for `nthreads` workers.
    ///
    /// # Errors
    ///
    /// Propagates planning, transformation and lowering failures.
    pub fn transform(&self, opt: OptLevel, nthreads: u32) -> Result<Transformed, DseError> {
        self.transform_with_layout(opt, nthreads, LayoutMode::Bonded)
    }

    /// Like [`Analysis::transform`] with an explicit replica layout.
    ///
    /// # Errors
    ///
    /// Propagates planning, transformation and lowering failures.
    pub fn transform_with_layout(
        &self,
        opt: OptLevel,
        nthreads: u32,
        layout: LayoutMode,
    ) -> Result<Transformed, DseError> {
        let mut timer = PhaseTimer::new();
        let plan = timer.time("plan", || self.plan_with_layout(opt, nthreads, layout))?;
        timer.stat("nthreads", nthreads as i64);
        let mut t = self.apply_plan(plan, opt)?;
        let mut phases = timer.into_spans();
        phases.append(&mut t.phases);
        t.phases = phases;
        Ok(t)
    }

    /// The xform phase: executes an already-built expansion plan
    /// (expansion + promotion + redirection) and lowers the result with
    /// parallel scheduling. `opt` only selects the redirection codegen
    /// here — `OptLevel::None` also means naive (non-strength-reduced)
    /// addressing, per Figure 9a.
    ///
    /// # Errors
    ///
    /// Propagates transformation and lowering failures.
    pub fn apply_plan(&self, plan: ExpansionPlan, opt: OptLevel) -> Result<Transformed, DseError> {
        let mut timer = PhaseTimer::new();
        timer.start("xform");
        let sync_eids = self.shared_carried_eids();
        let result = expand_program(&self.program, &plan, &sync_eids)?;
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            naive_redirection: opt == OptLevel::None,
            ..Default::default()
        };
        let mut modes = HashMap::new();
        for cls in &self.classifications {
            let window = result.sync_windows.get(&cls.label).copied().flatten();
            opts.par.insert(
                cls.label.clone(),
                ParLoopSpec {
                    mode: cls.mode,
                    sync_window: window,
                },
            );
            modes.insert(cls.label.clone(), cls.mode);
        }
        let parallel = dse_ir::lower_program(&result.program, &opts)?;
        timer.finish();
        timer.stat(
            "privatized_structures",
            result.report.privatized_structures() as i64,
        );
        timer.stat(
            "accesses_redirected",
            result.report.private_accesses_redirected as i64,
        );
        timer.stat("instructions", parallel.code.len() as i64);

        Ok(Transformed {
            program: result.program,
            parallel,
            report: result.report,
            modes,
            plan,
            sync_windows: result.sync_windows,
            eid_provenance: result.eid_provenance,
            phases: timer.into_spans(),
        })
    }

    /// Produces the runtime-privatization baseline executable (the
    /// SpiceC-style scheme of Section 4.2.1): named private variables are
    /// privatized statically, private heap accesses call into the
    /// `__localize` runtime (copy-in on first touch, address translation
    /// per access, commit at loop end). Candidate loops are scheduled like
    /// the transformed program.
    ///
    /// # Errors
    ///
    /// Propagates planning, transformation and lowering failures.
    pub fn baseline_parallel(&self, nthreads: u32) -> Result<Transformed, DseError> {
        let plan = self.baseline_plan(nthreads)?;
        self.apply_plan(plan, OptLevel::Full)
    }

    /// Per-candidate-loop profile stats in telemetry form (for
    /// [`dse_telemetry::RunMetrics`]).
    pub fn loop_stats(&self) -> Vec<dse_telemetry::LoopStat> {
        self.profile
            .loops
            .iter()
            .map(|l| dse_telemetry::LoopStat {
                loop_id: l.loop_id,
                label: l.label.clone(),
                iterations: l.iterations,
                accesses: l.total_accesses,
                instructions: l.instructions,
            })
            .collect()
    }

    /// Per loop label: eids of shared accesses involved in loop-carried
    /// dependences (the ordered section for DOACROSS).
    pub fn shared_carried_eids(&self) -> HashMap<String, HashSet<u32>> {
        let mut out = HashMap::new();
        for cls in &self.classifications {
            let eids: HashSet<u32> = cls
                .shared_carried_sites
                .iter()
                .map(|s| self.serial.sites.info(*s).eid)
                .filter(|&e| e != dse_lang::ast::NO_EID)
                .collect();
            out.insert(cls.label.clone(), eids);
        }
        out
    }
}

/// Computes DOACROSS sync windows over the *original* program's candidate
/// bodies (used by the runtime-privatization baseline, which does not
/// restructure statements).
pub fn original_sync_windows(
    program: &Program,
    sync_eids: &HashMap<String, HashSet<u32>>,
) -> HashMap<String, Option<(usize, usize)>> {
    use dse_lang::ast::*;
    fn scan(
        block: &Block,
        fn_name: &str,
        ordinal: &mut usize,
        sync_eids: &HashMap<String, HashSet<u32>>,
        out: &mut HashMap<String, Option<(usize, usize)>>,
    ) {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::For { body, mark, .. } => {
                    if mark.candidate {
                        let this = *ordinal;
                        *ordinal += 1;
                        let label = mark
                            .label
                            .clone()
                            .unwrap_or_else(|| format!("{fn_name}#{this}"));
                        if let Some(set) = sync_eids.get(&label) {
                            let mut first = None;
                            let mut last = None;
                            for (i, st) in body.stmts.iter().enumerate() {
                                let mut found = false;
                                let mut probe = st.clone();
                                visit_exprs_in_stmt(&mut probe, &mut |e| {
                                    if set.contains(&e.eid) {
                                        found = true;
                                    }
                                });
                                if found {
                                    if first.is_none() {
                                        first = Some(i);
                                    }
                                    last = Some(i);
                                }
                            }
                            let window = match (first, last) {
                                (Some(f), Some(l)) => Some((f, l)),
                                _ if !set.is_empty() && !body.stmts.is_empty() => {
                                    Some((0, body.stmts.len() - 1))
                                }
                                _ => None,
                            };
                            out.insert(label, window);
                        }
                    }
                    scan(body, fn_name, ordinal, sync_eids, out);
                }
                StmtKind::If { then, els, .. } => {
                    scan(then, fn_name, ordinal, sync_eids, out);
                    if let Some(b) = els {
                        scan(b, fn_name, ordinal, sync_eids, out);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    scan(body, fn_name, ordinal, sync_eids, out)
                }
                StmtKind::Block(b) => scan(b, fn_name, ordinal, sync_eids, out),
                _ => {}
            }
        }
    }
    let mut out = HashMap::new();
    let mut ordinal = 0usize;
    for f in &program.functions {
        scan(&f.body, &f.name, &mut ordinal, sync_eids, &mut out);
    }
    out
}
