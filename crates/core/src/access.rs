//! Access-chain decomposition shared by planning and transformation.
//!
//! A memory-access expression (`v`, `a[i]`, `s.f`, `*p`, `p->f`, and
//! compositions) has exactly one *root*: either a named variable reached
//! through fields/array indices, or a *pointer boundary* — the pointer
//! value that is dereferenced. Redirection (Table 2) happens at the root:
//! direct accesses index the variable's replicated copies; indirect
//! accesses add `tid * span / sizeof(*p)` to the boundary pointer.

use dse_lang::ast::*;
use dse_lang::types::Type;

/// The root of an access chain.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessRoot<'a> {
    /// The chain bottoms out at a named variable.
    Direct(VarBinding),
    /// The chain dereferences this pointer-valued expression.
    Indirect(&'a Expr),
}

/// Finds the root of the access expression `e` (which must be typed).
/// Returns `None` for expressions that are not accesses.
pub fn access_root(e: &Expr) -> Option<AccessRoot<'_>> {
    match &e.kind {
        ExprKind::Var { binding, .. } => Some(AccessRoot::Direct(binding.expect("typed AST"))),
        ExprKind::Field { base, .. } => access_root(base),
        ExprKind::Index { base, .. } => {
            if matches!(base.ty(), Type::Array(..)) {
                access_root(base)
            } else {
                Some(AccessRoot::Indirect(base))
            }
        }
        ExprKind::Deref(p) => Some(AccessRoot::Indirect(p)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::compile_to_ast;

    /// The lhs of the *last* assignment in the program (the access under
    /// test in these sources).
    fn first_assign_lhs(src: &str) -> (Program, Expr) {
        let p = compile_to_ast(src).unwrap();
        let mut found = None;
        let mut prog = p.clone();
        for f in &mut prog.functions {
            visit_exprs_in_block(&mut f.body, &mut |e| {
                if let ExprKind::Assign { lhs, .. } = &e.kind {
                    found = Some((**lhs).clone());
                }
            });
        }
        (p, found.unwrap())
    }

    #[test]
    fn direct_roots() {
        let (_, lhs) = first_assign_lhs("int g; int main() { g = 1; return 0; }");
        assert!(matches!(access_root(&lhs), Some(AccessRoot::Direct(_))));

        let (_, lhs) = first_assign_lhs("int a[4]; int main() { a[2] = 1; return 0; }");
        assert!(matches!(access_root(&lhs), Some(AccessRoot::Direct(_))));

        let (_, lhs) = first_assign_lhs(
            "struct S { int x[3]; }; struct S s; int main() { s.x[1] = 1; return 0; }",
        );
        assert!(matches!(access_root(&lhs), Some(AccessRoot::Direct(_))));
    }

    #[test]
    fn indirect_roots() {
        let (_, lhs) =
            first_assign_lhs("int main() { int *p; p = malloc(8); *p = 1; free(p); return 0; }");
        assert!(matches!(access_root(&lhs), Some(AccessRoot::Indirect(_))));

        let (_, lhs) =
            first_assign_lhs("int main() { int *p; p = malloc(8); p[1] = 1; free(p); return 0; }");
        assert!(matches!(access_root(&lhs), Some(AccessRoot::Indirect(_))));

        let (_, lhs) = first_assign_lhs(
            "struct N { int v; }; int main() { struct N *p; p = malloc(8); p->v = 1;
               free(p); return 0; }",
        );
        assert!(matches!(access_root(&lhs), Some(AccessRoot::Indirect(_))));
    }

    #[test]
    fn non_access_is_none() {
        let p = compile_to_ast("int main() { return 1 + 2; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(access_root(e), None);
    }
}
