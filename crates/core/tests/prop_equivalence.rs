//! Randomized soundness fuzzing of the expansion pass.
//!
//! Random candidate-loop bodies are generated from a small statement
//! grammar over scalars, a local scratch array, a heap scratch buffer, a
//! global, and an accumulator. The property is the transformation's
//! soundness contract: **whatever the dependence structure turns out to be
//! — privatizable, accumulating, upward-exposed, anything — the profiled
//! classification plus expansion must preserve the program's observable
//! results on every thread count**. Non-privatizable patterns must come
//! out shared/DOACROSS-ordered, not broken. Cases come from the
//! workspace's deterministic PRNG, so failures reproduce exactly.

use dse_core::{Analysis, OptLevel};
use dse_runtime::{Vm, VmConfig};
use dse_workloads::rng::Rng;

/// A generated integer expression over the loop's names.
#[derive(Debug, Clone)]
enum GExpr {
    Lit(i8),
    I,
    A,
    B,
    Glob,
    Acc,
    Loc(Box<GExpr>),
    Heap(Box<GExpr>),
    Add(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, Box<GExpr>),
    Xor(Box<GExpr>, Box<GExpr>),
}

impl GExpr {
    fn render(&self) -> String {
        match self {
            GExpr::Lit(v) => format!("{v}"),
            GExpr::I => "i".into(),
            GExpr::A => "a".into(),
            GExpr::B => "b".into(),
            GExpr::Glob => "gv".into(),
            GExpr::Acc => "(int)acc".into(),
            GExpr::Loc(ix) => format!("locbuf[({}) & 7]", ix.render()),
            GExpr::Heap(ix) => format!("heapbuf[({}) & 15]", ix.render()),
            GExpr::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            GExpr::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            GExpr::Xor(l, r) => format!("({} ^ {})", l.render(), r.render()),
        }
    }
}

/// A generated statement.
#[derive(Debug, Clone)]
enum GStmt {
    /// `a = e;` / `b = e;` / `gv = e;`
    SetScalar(u8, GExpr),
    /// `locbuf[ix & 7] = e;`
    SetLoc(GExpr, GExpr),
    /// `heapbuf[ix & 15] = e;`
    SetHeap(GExpr, GExpr),
    /// `acc += e;`
    BumpAcc(GExpr),
    /// `if (e) { s } else { s }`
    If(GExpr, Box<GStmt>, Box<GStmt>),
    /// `for (int k = 0; k < 4; k++) { s }` with `k` available via `a`.
    Loop(Box<GStmt>),
}

impl GStmt {
    fn render(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 2);
        match self {
            GStmt::SetScalar(which, e) => {
                let name = match which % 3 {
                    0 => "a",
                    1 => "b",
                    _ => "gv",
                };
                out.push_str(&format!("{pad}{name} = {};\n", e.render()));
            }
            GStmt::SetLoc(ix, e) => {
                out.push_str(&format!(
                    "{pad}locbuf[({}) & 7] = {};\n",
                    ix.render(),
                    e.render()
                ));
            }
            GStmt::SetHeap(ix, e) => {
                out.push_str(&format!(
                    "{pad}heapbuf[({}) & 15] = {};\n",
                    ix.render(),
                    e.render()
                ));
            }
            GStmt::BumpAcc(e) => {
                out.push_str(&format!("{pad}acc += {};\n", e.render()));
            }
            GStmt::If(c, t, f) => {
                out.push_str(&format!("{pad}if ({}) {{\n", c.render()));
                t.render(out, depth + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                f.render(out, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            GStmt::Loop(body) => {
                out.push_str(&format!("{pad}for (int k = 0; k < 4; k++) {{\n"));
                out.push_str(&format!("{pad}  a = a + k;\n"));
                body.render(out, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> GExpr {
    use GExpr::*;
    if depth == 0 || rng.gen_ratio(2, 5) {
        return match rng.gen_index(6) {
            0 => Lit(rng.next_u64() as i8),
            1 => I,
            2 => A,
            3 => B,
            4 => Glob,
            _ => Acc,
        };
    }
    let sub = |rng: &mut Rng| Box::new(gen_expr(rng, depth - 1));
    match rng.gen_index(5) {
        0 => Loc(sub(rng)),
        1 => Heap(sub(rng)),
        2 => Add(sub(rng), sub(rng)),
        3 => Mul(sub(rng), sub(rng)),
        _ => Xor(sub(rng), sub(rng)),
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> GStmt {
    use GStmt::*;
    if depth == 0 || rng.gen_ratio(3, 4) {
        return match rng.gen_index(4) {
            0 => SetScalar(rng.next_u64() as u8, gen_expr(rng, 3)),
            1 => SetLoc(gen_expr(rng, 2), gen_expr(rng, 2)),
            2 => SetHeap(gen_expr(rng, 2), gen_expr(rng, 2)),
            _ => BumpAcc(gen_expr(rng, 3)),
        };
    }
    if rng.gen_bool() {
        If(
            gen_expr(rng, 2),
            Box::new(gen_stmt(rng, depth - 1)),
            Box::new(gen_stmt(rng, depth - 1)),
        )
    } else {
        Loop(Box::new(gen_stmt(rng, depth - 1)))
    }
}

fn render_program(stmts: &[GStmt]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.render(&mut body, 0);
    }
    format!(
        "int gv;
int main() {{
  int *heapbuf; heapbuf = malloc(16 * sizeof(int));
  int *outv; outv = malloc(20 * sizeof(int));
  long acc; acc = 0;
  #pragma candidate fuzz
  for (int i = 0; i < 20; i++) {{
    int a; a = i;
    int b; b = 7;
    int locbuf[8];
    for (int z = 0; z < 8; z++) {{ locbuf[z] = 0; }}
{body}
    outv[i] = a ^ b ^ locbuf[i & 7] ^ heapbuf[i & 15];
  }}
  long h; h = acc;
  for (int i = 0; i < 20; i++) {{ h = (h * 31 + outv[i]) & 0xffffffffff; }}
  out_long(h);
  free(heapbuf); free(outv);
  return 0;
}}
"
    )
}

fn gen_case(seed: u64, max_stmts: i64) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.gen_range(1, max_stmts) as usize;
    let stmts: Vec<GStmt> = (0..n).map(|_| gen_stmt(&mut rng, 2)).collect();
    render_program(&stmts)
}

fn run(compiled: dse_ir::bytecode::CompiledProgram, n: u32) -> Vec<i64> {
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: n,
            max_instructions: 80_000_000,
            ..Default::default()
        },
    )
    .expect("vm");
    vm.run().expect("generated programs never trap");
    vm.outputs_int()
}

/// The transformation preserves observable behavior for arbitrary
/// generated loop bodies, at every optimization level and thread count.
#[test]
fn expansion_preserves_semantics() {
    for case in 0..48u64 {
        let src = gen_case(0xE0_0115 + case, 5);
        let analysis = Analysis::from_source(&src, VmConfig::default())
            .unwrap_or_else(|e| panic!("pipeline failed on generated program: {e}\n{src}"));
        let reference = run(analysis.serial.clone(), 1);
        for (opt, n) in [
            (OptLevel::Full, 3u32),
            (OptLevel::Full, 8u32),
            (OptLevel::None, 2u32),
        ] {
            let t = analysis
                .transform(opt, n)
                .unwrap_or_else(|e| panic!("transform failed: {e}\n{src}"));
            let got = run(t.parallel, n);
            assert_eq!(got, reference, "mismatch at {opt:?} n={n}\n{src}");
        }
        // The runtime-privatization baseline must agree too.
        let b = analysis
            .baseline_parallel(4)
            .unwrap_or_else(|e| panic!("baseline failed: {e}\n{src}"));
        let got = run(b.parallel, 4);
        assert_eq!(got, reference, "baseline mismatch\n{src}");
        // Interleaved layout, when its structural limits allow it.
        if let Ok(t) =
            analysis.transform_with_layout(OptLevel::Full, 4, dse_core::LayoutMode::Interleaved)
        {
            let got = run(t.parallel, 4);
            assert_eq!(got, reference, "interleaved mismatch\n{src}");
        }
    }
}

/// The pretty-printed transformed program, when it stays in the
/// parsable subset, re-checks under sema (printer/transform coherence).
#[test]
fn transformed_programs_reprint_consistently() {
    for case in 0..32u64 {
        let src = gen_case(0x4E_4123 + case, 4);
        let analysis = Analysis::from_source(&src, VmConfig::default()).unwrap();
        let t = analysis.transform(OptLevel::Full, 4).unwrap();
        let printed = dse_lang::printer::print_program(&t.program);
        if dse_lang::printer::roundtrips(&t.program) {
            let reparsed = dse_lang::compile_to_ast(&printed);
            assert!(
                reparsed.is_ok(),
                "printed transform failed to reparse: {:?}\n{printed}",
                reparsed.err()
            );
        }
    }
}
