//! End-to-end semantic-equivalence tests for the expansion pass.
//!
//! Every program is executed four ways and must produce identical host
//! outputs (`out_long`/`out_float`) and return values:
//!
//! 1. the original program, serially;
//! 2. the transformed program at each [`OptLevel`], on 1..=4 threads;
//! 3. the runtime-privatization baseline on 1..=4 threads.
//!
//! The sources model the privatization idioms of the paper's benchmarks
//! (scratch buffers, per-iteration linked lists, recast work arrays,
//! multi-site allocations, reallocation, annotated shared structures).

use dse_core::{Analysis, OptLevel};
use dse_runtime::{Value, Vm, VmConfig};

fn run_outputs(
    compiled: dse_ir::bytecode::CompiledProgram,
    nthreads: u32,
    inputs: &[i64],
) -> (Option<i64>, Vec<i64>, Vec<f64>) {
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads,
            inputs_int: inputs.to_vec(),
            max_instructions: 500_000_000,
            ..Default::default()
        },
    )
    .expect("vm");
    let report = vm.run().expect("run");
    let ret = match report.return_value {
        Some(Value::I(v)) => Some(v),
        _ => None,
    };
    (ret, vm.outputs_int(), vm.outputs_float())
}

/// Checks all transformed/baseline configurations against the original.
fn check_equivalence(src: &str, inputs: &[i64]) -> Analysis {
    let profile_cfg = VmConfig {
        inputs_int: inputs.to_vec(),
        max_instructions: 500_000_000,
        ..Default::default()
    };
    let analysis = Analysis::from_source(src, profile_cfg).expect("analysis");
    let reference = run_outputs(analysis.serial.clone(), 1, inputs);
    for opt in [OptLevel::None, OptLevel::NoConstSpan, OptLevel::Full] {
        for n in [1u32, 2, 4] {
            let t = analysis
                .transform(opt, n)
                .unwrap_or_else(|e| panic!("transform {opt:?} n={n}: {e}"));
            let got = run_outputs(t.parallel, n, inputs);
            assert_eq!(got, reference, "opt={opt:?} nthreads={n}");
        }
    }
    for n in [1u32, 2, 4] {
        let b = analysis.baseline_parallel(n).expect("baseline");
        let got = run_outputs(b.parallel, n, inputs);
        assert_eq!(got, reference, "runtime-priv baseline nthreads={n}");
    }
    analysis
}

/// Scratch scalar written then read per iteration plus a result array:
/// classic expandable pattern, DOALL.
#[test]
fn scratch_scalar_doall() {
    let analysis = check_equivalence(
        "int main() {
           int *out; out = malloc(64 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 64; i++) {
             int t;
             t = i * 3;
             t = t + i;
             out[i] = t;
           }
           long s; s = 0;
           for (int i = 0; i < 64; i++) { s += out[i]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
    let cls = analysis.classification("hot").unwrap();
    assert_eq!(cls.mode, dse_ir::loops::ParMode::DoAll);
    let plan = analysis.plan(OptLevel::Full, 4).unwrap();
    // t is expanded; out is written disjointly (free of carried deps) and
    // must NOT be expanded.
    assert!(plan
        .expanded
        .iter()
        .any(|o| matches!(o, dse_analysis::PtObj::Var(dse_analysis::VarId::Local(..)))));
    assert!(!plan
        .expanded
        .iter()
        .any(|o| matches!(o, dse_analysis::PtObj::Alloc(_))));
}

/// Heap scratch buffer with a single allocation site: the Figure 1 zptr
/// pattern. Full opt uses a constant span and promotes nothing.
#[test]
fn heap_scratch_buffer_constant_span() {
    let analysis = check_equivalence(
        "int main() {
           int *zptr; zptr = malloc(16 * sizeof(int));
           int *out; out = malloc(40 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 40; i++) {
             for (int k = 0; k < 16; k++) { zptr[k] = i + k * 2; }
             int b; b = 0;
             for (int k = 0; k < 16; k++) { b += zptr[k]; }
             out[i] = b;
           }
           long s; s = 0;
           for (int i = 0; i < 40; i++) { s += out[i]; }
           out_long(s);
           free(zptr); free(out);
           return 0; }",
        &[],
    );
    let plan = analysis.plan(OptLevel::Full, 4).unwrap();
    assert!(
        plan.fat_types.is_empty(),
        "single const-size allocation needs no promotion: {:?}",
        plan.fat_types
    );
    assert!(!plan.const_span.is_empty());
    assert!(plan
        .expanded
        .iter()
        .any(|o| matches!(o, dse_analysis::PtObj::Alloc(_))));
    // Without const spans the zptr pointer must be promoted instead.
    let plan2 = analysis.plan(OptLevel::NoConstSpan, 4).unwrap();
    assert!(!plan2.fat_types.is_empty());
}

/// The 456.hmmer mx pattern: two allocation sites with different sizes
/// reaching the same pointer force dynamic spans (fat pointers).
#[test]
fn hmmer_two_site_allocation_needs_span() {
    let analysis = check_equivalence(
        "int main() {
           long total; total = 0;
           int *out; out = malloc(30 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 30; i++) {
             int *mx;
             int m;
             if (i % 2 == 0) { mx = malloc(8 * sizeof(int)); m = 8; }
             else { mx = malloc(12 * sizeof(int)); m = 12; }
             for (int k = 0; k < m; k++) { mx[k] = i + k; }
             int b; b = 0;
             for (int k = 0; k < m; k++) { b += mx[k]; }
             out[i] = b;
             free(mx);
           }
           for (int i = 0; i < 30; i++) { total += out[i]; }
           out_long(total);
           free(out);
           return 0; }",
        &[],
    );
    let plan = analysis.plan(OptLevel::Full, 4).unwrap();
    assert!(
        !plan.fat_types.is_empty(),
        "two different-sized sites require promotion"
    );
    assert!(plan.const_span.is_empty());
}

/// The 256.bzip2 recast idiom: an int work array read through a short
/// view. Byte-granular dependences and bonded-mode expansion keep it
/// correct.
#[test]
fn bzip2_recast_buffer() {
    check_equivalence(
        "int main() {
           int *zptr; zptr = malloc(8 * sizeof(int));
           int *out; out = malloc(25 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 25; i++) {
             for (int k = 0; k < 8; k++) { zptr[k] = (i + 1) * (k + 3); }
             short *view;
             view = (short*)zptr;
             int b; b = 0;
             for (int k = 0; k < 16; k++) { b += view[k]; }
             out[i] = b;
           }
           long s; s = 0;
           for (int i = 0; i < 25; i++) { s += out[i]; }
           out_long(s);
           free(zptr); free(out);
           return 0; }",
        &[],
    );
}

/// The dijkstra idiom: a linked list built and torn down per iteration.
#[test]
fn linked_list_rebuilt_per_iteration() {
    check_equivalence(
        "struct Node { int v; struct Node *next; };
         int main() {
           int *out; out = malloc(20 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 20; i++) {
             struct Node *head;
             head = 0;
             for (int k = 0; k < 6; k++) {
               struct Node *n;
               n = malloc(sizeof(struct Node));
               n->v = i * 10 + k;
               n->next = head;
               head = n;
             }
             int b; b = 0;
             while (head) {
               b += head->v;
               struct Node *d;
               d = head;
               head = head->next;
               free(d);
             }
             out[i] = b;
           }
           long s; s = 0;
           for (int i = 0; i < 20; i++) { s += out[i]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
}

/// Reallocation of an expanded work array (exercises __realloc_expanded).
#[test]
fn realloc_of_expanded_buffer() {
    check_equivalence(
        "int main() {
           int *buf; buf = malloc(4 * sizeof(int));
           int cap; cap = 4;
           int *out; out = malloc(12 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 12; i++) {
             int need; need = 4 + (i % 5);
             if (need > cap) {
               buf = realloc(buf, (long)need * sizeof(int));
               cap = need;
             }
             for (int k = 0; k < need; k++) { buf[k] = i + k; }
             int b; b = 0;
             for (int k = 0; k < need; k++) { b += buf[k]; }
             out[i] = b;
           }
           long s; s = 0;
           for (int i = 0; i < 12; i++) { s += out[i]; }
           out_long(s);
           free(buf); free(out);
           return 0; }",
        &[],
    );
}

/// Global scalar and global array expansion (the paper's global-to-heap
/// re-homing with initializer seeding).
#[test]
fn global_expansion() {
    check_equivalence(
        "int gscr;
         int gtab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
         int main() {
           int *out; out = malloc(32 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 32; i++) {
             gscr = i * 2;
             int b; b = gscr + gtab[i % 8];
             out[i] = b;
           }
           long s; s = 0;
           for (int i = 0; i < 32; i++) { s += out[i]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
}

/// Global scratch ARRAY written before read per iteration.
#[test]
fn global_scratch_array_expansion() {
    let analysis = check_equivalence(
        "int scratch[10];
         int main() {
           int *out; out = malloc(20 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 20; i++) {
             for (int k = 0; k < 10; k++) { scratch[k] = i * k; }
             int b; b = 0;
             for (int k = 0; k < 10; k++) { b += scratch[k]; }
             out[i] = b;
           }
           long s; s = 0;
           for (int i = 0; i < 20; i++) { s += out[i]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
    let plan = analysis.plan(OptLevel::Full, 4).unwrap();
    assert!(plan
        .expanded
        .iter()
        .any(|o| matches!(o, dse_analysis::PtObj::Var(dse_analysis::VarId::Global(_)))));
}

/// Accumulator forces DOACROSS with an ordered section; scratch still
/// expands.
#[test]
fn doacross_accumulator_with_scratch() {
    let analysis = check_equivalence(
        "int main() {
           long acc; acc = 0;
           #pragma candidate hot
           for (int i = 0; i < 50; i++) {
             int t;
             t = i * i;
             t = t - i;
             acc += t;
           }
           out_long(acc);
           return 0; }",
        &[],
    );
    let cls = analysis.classification("hot").unwrap();
    assert_eq!(cls.mode, dse_ir::loops::ParMode::DoAcross);
    assert!(!cls.shared_carried_sites.is_empty());
}

/// Private accesses inside a helper function called from the loop;
/// the scratch pointer travels through a fat parameter.
#[test]
fn helper_function_with_fat_param() {
    check_equivalence(
        "void fill(int *b, int n, int seed) {
           for (int k = 0; k < n; k++) { b[k] = seed + k; }
         }
         int total(int *b, int n) {
           int s; s = 0;
           for (int k = 0; k < n; k++) { s += b[k]; }
           return s;
         }
         int main() {
           int *out; out = malloc(18 * sizeof(int));
           int *scratch;
           int m;
           m = (int)in_long(0);
           scratch = malloc((long)m * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 18; i++) {
             fill(scratch, m, i);
             out[i] = total(scratch, m);
           }
           long s; s = 0;
           for (int i = 0; i < 18; i++) { s += out[i]; }
           out_long(s);
           free(scratch); free(out);
           return 0; }",
        &[7],
    );
}

/// A function *returning* a freshly allocated private structure: the span
/// comes back through the __retspan out-parameter.
#[test]
fn fat_return_value() {
    check_equivalence(
        "int *make(int n, int seed) {
           int *b; b = malloc((long)n * sizeof(int));
           for (int k = 0; k < n; k++) { b[k] = seed * k; }
           return b;
         }
         int main() {
           int *out; out = malloc(15 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 15; i++) {
             int *b;
             b = make(5 + (i % 3), i);
             int s; s = 0;
             for (int k = 0; k < 5; k++) { s += b[k]; }
             out[i] = s;
             free(b);
           }
           long s; s = 0;
           for (int i = 0; i < 15; i++) { s += out[i]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
}

/// Struct with a pointer field holding a private buffer: field promotion
/// (fat cells in memory).
#[test]
fn struct_with_pointer_field() {
    check_equivalence(
        "struct Holder { int n; int *data; };
         int main() {
           int *out; out = malloc(14 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 14; i++) {
             struct Holder h;
             h.n = 4 + (i % 4);
             h.data = malloc((long)h.n * sizeof(int));
             for (int k = 0; k < h.n; k++) { h.data[k] = i + 2 * k; }
             int s; s = 0;
             for (int k = 0; k < h.n; k++) { s += h.data[k]; }
             out[i] = s;
             free(h.data);
           }
           long s; s = 0;
           for (int i = 0; i < 14; i++) { s += out[i]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
}

/// Two candidate loops in one program (the h263-encoder shape).
#[test]
fn two_candidate_loops() {
    check_equivalence(
        "int main() {
           int *a; a = malloc(16 * sizeof(int));
           int *b; b = malloc(16 * sizeof(int));
           #pragma candidate first
           for (int i = 0; i < 16; i++) {
             int t; t = i * 7; a[i] = t % 13;
           }
           #pragma candidate second
           for (int i = 0; i < 16; i++) {
             int t; t = a[i] + i; b[i] = t * 2;
           }
           long s; s = 0;
           for (int i = 0; i < 16; i++) { s += b[i]; }
           out_long(s);
           free(a); free(b);
           return 0; }",
        &[],
    );
}

/// Pointer arithmetic walking a private buffer (pointer ++ and p = p + k).
#[test]
fn pointer_walking_private_buffer() {
    check_equivalence(
        "int main() {
           int *buf; buf = malloc(12 * sizeof(int));
           int *out; out = malloc(10 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 10; i++) {
             int *p;
             p = buf;
             for (int k = 0; k < 12; k++) { *p = i + k; p++; }
             p = buf + 11;
             int s; s = 0;
             while (p >= buf) { s += *p; p = p - 1; }
             out[i] = s;
           }
           long s; s = 0;
           for (int i = 0; i < 10; i++) { s += out[i]; }
           out_long(s);
           free(buf); free(out);
           return 0; }",
        &[],
    );
}

/// Candidate loop nested inside outer serial loops (the mpeg2 motion
/// estimation shape: the parallel loop is at level 3).
#[test]
fn nested_candidate_level3() {
    check_equivalence(
        "int main() {
           int *out; out = malloc(3 * 4 * 8 * sizeof(int));
           int *scratch; scratch = malloc(6 * sizeof(int));
           for (int a = 0; a < 3; a++) {
             for (int b = 0; b < 4; b++) {
               #pragma candidate inner
               for (int c = 0; c < 8; c++) {
                 for (int k = 0; k < 6; k++) { scratch[k] = a + b * c + k; }
                 int s; s = 0;
                 for (int k = 0; k < 6; k++) { s += scratch[k]; }
                 out[(a * 4 + b) * 8 + c] = s;
               }
             }
           }
           long s; s = 0;
           for (int i = 0; i < 96; i++) { s += out[i]; }
           out_long(s);
           free(out); free(scratch);
           return 0; }",
        &[],
    );
}

/// Report sanity: the privatized-structure count matches expectation for a
/// simple two-structure program (Table 5's metric).
#[test]
fn report_counts_structures() {
    let src = "int main() {
           int *s1; s1 = malloc(8 * sizeof(int));
           int s2;
           int *out; out = malloc(10 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 10; i++) {
             s2 = i * 3;
             for (int k = 0; k < 8; k++) { s1[k] = i + k + s2; }
             int acc; acc = 0;
             for (int k = 0; k < 8; k++) { acc += s1[k]; }
             out[i] = acc;
           }
           long t; t = 0;
           for (int i = 0; i < 10; i++) { t += out[i]; }
           out_long(t);
           free(s1); free(out);
           return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    let t = analysis.transform(OptLevel::Full, 4).unwrap();
    // s1 (heap) is a privatized data structure; s2, the inner counter k
    // and acc are expanded scalars (classic scalar expansion, reported
    // separately from Table 5's structure count).
    assert!(t.report.privatized_structures() >= 1);
    assert!(t.report.expanded_allocs >= 1);
    assert!(t.report.expanded_scalar_locals >= 2);
    assert_eq!(t.report.expanded_globals, 0);
}

/// The transformed program's memory use grows with N for expanded
/// structures (Figure 14's mechanism).
#[test]
fn expanded_memory_grows_with_threads() {
    let src = "int main() {
           int *buf; buf = malloc(1000 * sizeof(int));
           int *out; out = malloc(8 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 8; i++) {
             for (int k = 0; k < 1000; k++) { buf[k] = i + k; }
             int s; s = 0;
             for (int k = 0; k < 1000; k++) { s += buf[k]; }
             out[i] = s;
           }
           long s; s = 0;
           for (int i = 0; i < 8; i++) { s += out[i]; }
           out_long(s);
           free(buf); free(out);
           return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    let mut peaks = Vec::new();
    for n in [1u32, 2, 8] {
        let t = analysis.transform(OptLevel::Full, n).unwrap();
        let mut vm = Vm::new(
            t.parallel,
            VmConfig {
                nthreads: n,
                ..Default::default()
            },
        )
        .unwrap();
        let report = vm.run().unwrap();
        peaks.push(report.peak_heap_bytes);
    }
    assert!(peaks[1] > peaks[0]);
    assert!(peaks[2] > peaks[1]);
}

/// Without optimizations, everything is expanded and all pointers are fat;
/// the program still computes the same results (Figure 9a configuration).
#[test]
fn opt_none_expands_everything() {
    let src = "int helper(int x) { return x * 2; }
         int main() {
           int *buf; buf = malloc(6 * sizeof(int));
           int *out; out = malloc(9 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 9; i++) {
             for (int k = 0; k < 6; k++) { buf[k] = helper(i) + k; }
             int s; s = 0;
             for (int k = 0; k < 6; k++) { s += buf[k]; }
             out[i] = s;
           }
           long s; s = 0;
           for (int i = 0; i < 9; i++) { s += out[i]; }
           out_long(s);
           free(buf); free(out);
           return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    let plan_none = analysis.plan(OptLevel::None, 4).unwrap();
    let plan_full = analysis.plan(OptLevel::Full, 4).unwrap();
    assert!(plan_none.expanded.len() > plan_full.expanded.len());
    assert!(plan_none.fat_types.len() >= plan_full.fat_types.len());
    assert!(!plan_none.fat_types.is_empty());
}

/// Transformed-but-serial execution (N=1) is the paper's overhead
/// configuration: it must execute more instructions than the original,
/// and Full opt must cost less than None (Figure 9a vs 9b).
#[test]
fn overhead_ordering_none_vs_full() {
    let src = "int main() {
           int *buf; buf = malloc(32 * sizeof(int));
           int *out; out = malloc(40 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 40; i++) {
             for (int k = 0; k < 32; k++) { buf[k] = i * k + 1; }
             int s; s = 0;
             for (int k = 0; k < 32; k++) { s += buf[k]; }
             out[i] = s;
           }
           long s; s = 0;
           for (int i = 0; i < 40; i++) { s += out[i]; }
           out_long(s);
           free(buf); free(out);
           return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    let base = {
        let mut vm = Vm::new(analysis.serial.clone(), VmConfig::default()).unwrap();
        vm.run().unwrap().counters.work
    };
    let mut cost = std::collections::HashMap::new();
    for opt in [OptLevel::None, OptLevel::Full] {
        let t = analysis.transform(opt, 1).unwrap();
        let mut vm = Vm::new(t.parallel, VmConfig::default()).unwrap();
        cost.insert(format!("{opt:?}"), vm.run().unwrap().counters.work);
    }
    let none = cost["None"];
    let full = cost["Full"];
    assert!(none > base, "unoptimized expansion must add overhead");
    assert!(
        full < none,
        "Section 3.4 optimizations must reduce overhead: full={full} none={none}"
    );
}

/// Table 3 "Pointer arithmetic 2/3": an integer keeping a pointer
/// difference is promoted with its own span, so a pointer recovered as
/// `q + i` can still redirect.
#[test]
fn pointer_difference_integer_promotion() {
    check_equivalence(
        "int main() {
           int *out; out = malloc(12 * sizeof(int));
           #pragma candidate hot
           for (int it = 0; it < 12; it++) {
             int *buf;
             int m;
             if (it % 2 == 0) { buf = malloc(8 * sizeof(int)); m = 8; }
             else { buf = malloc(10 * sizeof(int)); m = 10; }
             for (int k = 0; k < m; k++) { buf[k] = it + k; }
             int *endp; endp = buf + m;
             long d; d = endp - buf;
             int *mid; mid = buf + (int)(d / 2);
             out[it] = *mid + buf[0];
             free(buf);
           }
           long s; s = 0;
           for (int it = 0; it < 12; it++) { s += out[it]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
}

/// Interleaved layout (Fig. 2b): named-array scratch programs run
/// equivalently under both layouts; heap-backed and recast programs are
/// rejected with the paper's own argument.
#[test]
fn interleaved_layout_equivalence_and_limits() {
    use dse_core::LayoutMode;
    // md5-like: global scratch array + local scratch array, all direct.
    let src = "int xbuf[16];
         int main() {
           int *out; out = malloc(20 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 20; i++) {
             int lb[8];
             for (int k = 0; k < 16; k++) { xbuf[k] = i * k + 1; }
             for (int k = 0; k < 8; k++) { lb[k] = xbuf[k] + xbuf[k + 8]; }
             int s; s = 0;
             for (int k = 0; k < 8; k++) { s += lb[k]; }
             out[i] = s;
           }
           long t; t = 0;
           for (int i = 0; i < 20; i++) { t += out[i]; }
           out_long(t);
           free(out);
           return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    let reference = run_outputs(analysis.serial.clone(), 1, &[]);
    for layout in [LayoutMode::Bonded, LayoutMode::Interleaved] {
        for n in [1u32, 4] {
            let t = analysis
                .transform_with_layout(OptLevel::Full, n, layout)
                .unwrap_or_else(|e| panic!("{layout:?}: {e}"));
            let got = run_outputs(t.parallel, n, &[]);
            assert_eq!(got, reference, "{layout:?} n={n}");
        }
    }
    // Interleaved costs more address arithmetic than bonded (no fused
    // root addressing): measurable in instruction counts.
    let bonded = {
        let t = analysis
            .transform_with_layout(OptLevel::Full, 1, LayoutMode::Bonded)
            .unwrap();
        let mut vm = Vm::new(t.parallel, VmConfig::default()).unwrap();
        vm.run().unwrap().counters.work
    };
    let inter = {
        let t = analysis
            .transform_with_layout(OptLevel::Full, 1, LayoutMode::Interleaved)
            .unwrap();
        let mut vm = Vm::new(t.parallel, VmConfig::default()).unwrap();
        vm.run().unwrap().counters.work
    };
    assert!(
        inter > bonded,
        "interleaved addressing should cost more: {inter} vs {bonded}"
    );

    // Heap scratch: interleaving is impossible (untyped block).
    let heap_src = "int main() {
           int *buf; buf = malloc(8 * sizeof(int));
           int *out; out = malloc(10 * sizeof(int));
           #pragma candidate hot
           for (int i = 0; i < 10; i++) {
             for (int k = 0; k < 8; k++) { buf[k] = i + k; }
             int s; s = 0;
             for (int k = 0; k < 8; k++) { s += buf[k]; }
             out[i] = s;
           }
           long t; t = 0;
           for (int i = 0; i < 10; i++) { t += out[i]; }
           out_long(t);
           free(buf); free(out);
           return 0; }";
    let analysis = Analysis::from_source(heap_src, VmConfig::default()).unwrap();
    let err = analysis
        .transform_with_layout(OptLevel::Full, 4, LayoutMode::Interleaved)
        .expect_err("heap blocks cannot interleave");
    assert!(err.0.contains("no static element type"), "{err}");
}

/// The bundled bzip2 model (recast work array) must reject interleaving —
/// the paper's exact motivating case for bonded mode.
#[test]
fn interleaved_rejects_bzip2_recast() {
    use dse_core::LayoutMode;
    let w = dse_workloads::by_name("bzip2").unwrap();
    let analysis =
        Analysis::from_source(w.source, w.vm_config(dse_workloads::Scale::Profile)).unwrap();
    let err = analysis
        .transform_with_layout(OptLevel::Full, 4, LayoutMode::Interleaved)
        .expect_err("bzip2's zptr cannot interleave");
    assert!(err.0.contains("interleaved"), "{err}");
}

/// Cross-structure pointer reconstruction through a *declaration-
/// initialized* difference integer (Table 3 "Pointer arithmetic 2/3"):
/// `long off = p - q;` then `r = q + off` must carry p's span.
#[test]
fn decl_initialized_pointer_difference() {
    let analysis = check_equivalence(
        "int main() {
           int *out; out = malloc(10 * sizeof(int));
           #pragma candidate hot
           for (int it = 0; it < 10; it++) {
             int *p; int *q;
             int ms; ms = 6 + (it % 3);
             p = malloc((long)ms * sizeof(int));
             q = malloc((long)(ms + 2) * sizeof(int));
             for (int k = 0; k < ms; k++) { p[k] = it * 2 + k; }
             for (int k = 0; k < ms + 2; k++) { q[k] = it + k; }
             long off = p - q;
             int *r; r = q + off;
             out[it] = *r + q[0];
             free(p); free(q);
           }
           long s; s = 0;
           for (int it = 0; it < 10; it++) { s += out[it]; }
           out_long(s);
           free(out);
           return 0; }",
        &[],
    );
    let plan = analysis.plan(OptLevel::Full, 4).unwrap();
    assert!(!plan.fat_ints.is_empty(), "off must be span-promoted");
}

/// Candidate loops without a pragma label still get their DOACROSS sync
/// window (labels are synthesized consistently across discovery,
/// transformation and the baseline).
#[test]
fn unlabeled_candidate_gets_sync_window() {
    let src = "int main() {
           long acc; acc = 0;
           #pragma candidate
           for (int i = 0; i < 30; i++) {
             int t; t = i * i;
             acc += t;
           }
           out_long(acc);
           return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    let label = analysis.classifications[0].label.clone();
    assert!(label.contains('#'), "synthesized label: {label}");
    // The transform must produce a window (not auto-post-only) so the
    // private work before the accumulator overlaps.
    let plan = analysis.plan(OptLevel::Full, 4).unwrap();
    let sync_eids = analysis.shared_carried_eids();
    let result = dse_core::expand_program(&analysis.program, &plan, &sync_eids).unwrap();
    let window = result.sync_windows.get(&label).copied().flatten();
    assert!(window.is_some(), "sync window must exist for `{label}`");
    // And the parallel runs agree with serial.
    let reference = run_outputs(analysis.serial.clone(), 1, &[]);
    for n in [2u32, 8] {
        let t = analysis.transform(OptLevel::Full, n).unwrap();
        assert_eq!(run_outputs(t.parallel, n, &[]), reference, "n={n}");
    }
}
