//! Randomized tests of the access-class construction (Definition 4) and
//! the thread-private test (Definition 5) over generated dependence
//! graphs, driven by the workspace's deterministic PRNG.

use dse_core::classify::{classify_loop, SiteClass, UnionFind};
use dse_depprof::{DepEdge, DepKind, LoopDdg};
use dse_workloads::rng::Rng;
use std::collections::{HashMap, HashSet};

const NSITES: u32 = 12;
const CASES: u64 = 256;

fn gen_edge(rng: &mut Rng) -> DepEdge {
    DepEdge {
        src: rng.gen_index(NSITES as usize) as u32,
        dst: rng.gen_index(NSITES as usize) as u32,
        kind: [DepKind::Flow, DepKind::Anti, DepKind::Output][rng.gen_index(3)],
        carried: rng.gen_bool(),
    }
}

fn gen_ddg(seed: u64) -> LoopDdg {
    let mut rng = Rng::seed_from_u64(seed);
    let edges: HashSet<DepEdge> = (0..rng.gen_range(0, 24))
        .map(|_| gen_edge(&mut rng))
        .collect();
    let up: HashSet<u32> = (0..rng.gen_range(0, 4))
        .map(|_| rng.gen_index(NSITES as usize) as u32)
        .collect();
    let down: HashSet<u32> = (0..rng.gen_range(0, 4))
        .map(|_| rng.gen_index(NSITES as usize) as u32)
        .collect();
    LoopDdg {
        label: "prop".into(),
        edges,
        upward_exposed: up,
        downward_exposed: down,
        site_counts: (0..NSITES).map(|s| (s, 1)).collect(),
        ..Default::default()
    }
}

/// Reference partition: connected components over loop-independent edges,
/// computed by naive fixpoint (independent of the union-find code).
fn reference_components(ddg: &LoopDdg) -> HashMap<u32, u32> {
    let mut comp: HashMap<u32, u32> = (0..NSITES).map(|s| (s, s)).collect();
    loop {
        let mut changed = false;
        for e in &ddg.edges {
            if e.carried {
                continue;
            }
            let a = comp[&e.src];
            let b = comp[&e.dst];
            if a != b {
                let m = a.min(b);
                for v in comp.values_mut() {
                    if *v == a || *v == b {
                        *v = m;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            return comp;
        }
    }
}

/// The union-find partition equals naive connected components over
/// loop-independent dependences (Definition 4).
#[test]
fn classes_are_connected_components() {
    for case in 0..CASES {
        let ddg = gen_ddg(0xC1A5 + case);
        let cls = classify_loop(&ddg);
        let reference = reference_components(&ddg);
        for a in 0..NSITES {
            for b in 0..NSITES {
                let same_ref = reference[&a] == reference[&b];
                let same_cls = cls.class_of[&a] == cls.class_of[&b];
                assert_eq!(same_ref, same_cls, "case {case}, sites {a} {b}");
            }
        }
    }
}

/// Definition 5, checked per site against the raw graph:
/// a private site's whole class has no exposed member and no carried
/// flow member, and some member carries an anti/output dependence;
/// a shared site's class violates one of the three.
#[test]
fn definition5_holds() {
    for case in 0..CASES {
        let ddg = gen_ddg(0xDEF5 + case);
        let cls = classify_loop(&ddg);
        let carried_flow = ddg.sites_in_carried(&[DepKind::Flow]);
        let carried_ao = ddg.sites_in_carried(&[DepKind::Anti, DepKind::Output]);
        // Group sites by class.
        let mut classes: HashMap<u32, Vec<u32>> = HashMap::new();
        for s in 0..NSITES {
            classes.entry(cls.class_of[&s]).or_default().push(s);
        }
        for members in classes.values() {
            let exposed = members
                .iter()
                .any(|s| ddg.upward_exposed.contains(s) || ddg.downward_exposed.contains(s));
            let has_cf = members.iter().any(|s| carried_flow.contains(s));
            let has_cao = members.iter().any(|s| carried_ao.contains(s));
            let should_be_private = !exposed && !has_cf && has_cao;
            for s in members {
                assert_eq!(
                    cls.site_class[s] == SiteClass::Private,
                    should_be_private,
                    "case {case}, site {s} in class {members:?}"
                );
            }
        }
    }
}

/// Mode selection: DOACROSS exactly when some shared site carries a
/// dependence; and every site the classifier calls shared-carried
/// really is shared and really carries.
#[test]
fn mode_matches_shared_carried() {
    for case in 0..CASES {
        let ddg = gen_ddg(0x30DE + case);
        let cls = classify_loop(&ddg);
        let carried: HashSet<u32> =
            ddg.sites_in_carried(&[DepKind::Flow, DepKind::Anti, DepKind::Output]);
        let expect_doacross = carried
            .iter()
            .any(|s| cls.site_class[s] == SiteClass::Shared);
        assert_eq!(
            cls.mode == dse_ir::loops::ParMode::DoAcross,
            expect_doacross,
            "case {case}"
        );
        for s in &cls.shared_carried_sites {
            assert!(carried.contains(s), "case {case}");
            assert_eq!(cls.site_class[s], SiteClass::Shared, "case {case}");
        }
    }
}

/// Naive partition oracle for the union-find properties: merge by
/// relabelling, no trees involved.
#[derive(Clone, PartialEq, Eq)]
struct NaivePartition(HashMap<u32, u32>);

impl NaivePartition {
    fn new(n: u32) -> Self {
        NaivePartition((0..n).map(|s| (s, s)).collect())
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.0[&a], self.0[&b]);
        for v in self.0.values_mut() {
            if *v == rb {
                *v = ra;
            }
        }
    }
    fn same(&self, a: u32, b: u32) -> bool {
        self.0[&a] == self.0[&b]
    }
}

fn gen_unions(seed: u64) -> Vec<(u32, u32)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..rng.gen_range(0, 30))
        .map(|_| {
            (
                rng.gen_index(NSITES as usize) as u32,
                rng.gen_index(NSITES as usize) as u32,
            )
        })
        .collect()
}

/// After any union sequence, `find` agrees with the naive oracle on every
/// same-class query, and is idempotent (path compression included).
#[test]
fn union_find_matches_naive_partition() {
    for case in 0..CASES {
        let pairs = gen_unions(0x0F1D + case);
        let mut uf = UnionFind::new();
        let mut oracle = NaivePartition::new(NSITES);
        for &(a, b) in &pairs {
            uf.union(a, b);
            oracle.union(a, b);
        }
        for a in 0..NSITES {
            let r = uf.find(a);
            assert_eq!(uf.find(a), r, "case {case}: find is idempotent");
            assert_eq!(uf.find(r), r, "case {case}: roots are fixpoints");
            for b in 0..NSITES {
                assert_eq!(
                    uf.find(a) == uf.find(b),
                    oracle.same(a, b),
                    "case {case}, sites {a} {b}"
                );
            }
        }
    }
}

/// The partition is insensitive to argument order and to the order unions
/// are applied in (commutativity and associativity of the merge).
#[test]
fn union_is_commutative_and_associative() {
    for case in 0..CASES {
        let pairs = gen_unions(0xACC0 + case);
        let mut forward = UnionFind::new();
        for &(a, b) in &pairs {
            forward.union(a, b);
        }
        let mut swapped_reversed = UnionFind::new();
        for &(a, b) in pairs.iter().rev() {
            swapped_reversed.union(b, a);
        }
        for a in 0..NSITES {
            for b in 0..NSITES {
                assert_eq!(
                    forward.find(a) == forward.find(b),
                    swapped_reversed.find(a) == swapped_reversed.find(b),
                    "case {case}, sites {a} {b}"
                );
            }
        }
    }
}

/// The Figure-8 breakdown partitions the dynamic accesses exactly.
#[test]
fn breakdown_partitions_counts() {
    for case in 0..CASES {
        let ddg = gen_ddg(0xB4EA + case);
        let cls = classify_loop(&ddg);
        let b = cls.access_breakdown(&ddg);
        let total: u64 = ddg.site_counts.values().sum();
        assert_eq!(b.total(), total, "case {case}");
    }
}
