use dse_core::{Analysis, OptLevel};
use dse_runtime::Vm;
use dse_workloads::{all, Scale};

fn main() {
    for w in all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile)).unwrap();
        let cfg = w.vm_config(Scale::Profile);
        let base = {
            let mut vm = Vm::new(analysis.serial.clone(), cfg.clone()).unwrap();
            vm.run().unwrap().counters.work
        };
        let mut line = format!("{:10} base={base:9}", w.name);
        for opt in [OptLevel::Full, OptLevel::NoConstSpan, OptLevel::None] {
            let t = analysis.transform(opt, 1).unwrap();
            let mut vm = Vm::new(t.parallel, cfg.clone()).unwrap();
            let work = vm.run().unwrap().counters.work;
            line += &format!("  {opt:?}={:.3}", work as f64 / base as f64);
        }
        println!("{line}");
    }
}
