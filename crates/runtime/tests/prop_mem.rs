//! Property-based tests of the shared memory against a byte-array oracle,
//! and of the heap allocator's invariants.

use dse_runtime::{Heap, SharedMem};
use proptest::prelude::*;

const MEM: u64 = 512;

/// One memory operation.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, width: u32, val: u64 },
    Copy { src: u64, dst: u64, len: u64 },
    Zero { addr: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..MEM - 8, prop_oneof![Just(1u32), Just(2), Just(4), Just(8)], any::<u64>())
            .prop_map(|(addr, width, val)| Op::Write { addr, width, val }),
        (0..MEM / 2, MEM / 2..MEM - 64, 0..64u64)
            .prop_map(|(src, dst, len)| Op::Copy { src, dst, len }),
        (0..MEM - 64, 0..64u64).prop_map(|(addr, len)| Op::Zero { addr, len }),
    ]
}

/// Applies `op` to both the VM memory and the oracle.
fn apply(mem: &SharedMem, oracle: &mut [u8], op: &Op) {
    match *op {
        Op::Write { addr, width, val } => {
            mem.write(addr, width, val);
            let bytes = val.to_le_bytes();
            for i in 0..width as usize {
                oracle[addr as usize + i] = bytes[i];
            }
        }
        Op::Copy { src, dst, len } => {
            mem.copy(src, dst, len);
            oracle.copy_within(src as usize..(src + len) as usize, dst as usize);
        }
        Op::Zero { addr, len } => {
            mem.zero(addr, len);
            oracle[addr as usize..(addr + len) as usize].fill(0);
        }
    }
}

proptest! {
    /// Arbitrary interleavings of writes/copies/zeroes leave the memory
    /// byte-identical to a plain byte-array model, at every width and
    /// alignment (including word-straddling accesses).
    #[test]
    fn memory_matches_byte_oracle(ops in prop::collection::vec(op_strategy(), 1..64)) {
        let mem = SharedMem::new(MEM);
        let mut oracle = vec![0u8; MEM as usize];
        for op in &ops {
            apply(&mem, &mut oracle, op);
        }
        for addr in 0..MEM {
            prop_assert_eq!(mem.read(addr, 1) as u8, oracle[addr as usize], "byte {}", addr);
        }
        // Wider reads agree too (little-endian composition).
        for addr in (0..MEM - 8).step_by(3) {
            let mut expect = [0u8; 8];
            expect.copy_from_slice(&oracle[addr as usize..addr as usize + 8]);
            prop_assert_eq!(mem.read(addr, 8), u64::from_le_bytes(expect));
        }
    }

    /// Live allocations never overlap, interior-pointer lookup agrees with
    /// the allocation bounds, and freeing everything allows a maximal
    /// reallocation (full coalescing).
    #[test]
    fn heap_invariants(sizes in prop::collection::vec(1u64..200, 1..20), frees in prop::collection::vec(any::<prop::sample::Index>(), 0..12)) {
        let h = Heap::new(0, 64 << 10);
        let mut live: Vec<dse_runtime::Allocation> = Vec::new();
        for &s in &sizes {
            let a = h.alloc(s).expect("arena is large enough");
            live.push(a);
        }
        for idx in &frees {
            if live.is_empty() { break; }
            let i = idx.index(live.len());
            let a = live.swap_remove(i);
            prop_assert!(h.free(a.base).is_some());
        }
        // No overlap among the live set.
        let mut sorted = live.clone();
        sorted.sort_by_key(|a| a.base);
        for w in sorted.windows(2) {
            prop_assert!(w[0].base + w[0].size <= w[1].base, "overlap: {:?}", w);
        }
        // Interior pointers resolve to their allocation; bases match.
        for a in &live {
            let mid = a.base + a.size / 2;
            prop_assert_eq!(h.containing(mid), Some(*a));
            prop_assert_eq!(h.at_base(a.base), Some(*a));
        }
        // Free the rest; the arena coalesces back to one block.
        for a in live {
            prop_assert!(h.free(a.base).is_some());
        }
        prop_assert_eq!(h.live_bytes(), 0);
        prop_assert!(h.alloc((64 << 10) - 32).is_some());
    }
}
