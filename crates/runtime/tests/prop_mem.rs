//! Randomized tests of the shared memory against a byte-array oracle, and
//! of the heap allocator's invariants. Cases are generated with the
//! workspace's deterministic PRNG (seeded per case), so failures reproduce
//! exactly.

use dse_runtime::{Heap, SharedMem};
use dse_workloads::rng::Rng;

const MEM: u64 = 512;
const CASES: u64 = 256;

/// One memory operation.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, width: u32, val: u64 },
    Copy { src: u64, dst: u64, len: u64 },
    Zero { addr: u64, len: u64 },
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_index(4) {
        0 => Op::Write {
            addr: rng.gen_range(0, (MEM - 8) as i64) as u64,
            width: [1u32, 2, 4, 8][rng.gen_index(4)],
            val: rng.next_u64(),
        },
        1 => Op::Copy {
            src: rng.gen_range(0, (MEM / 2) as i64) as u64,
            dst: rng.gen_range((MEM / 2) as i64, (MEM - 64) as i64) as u64,
            len: rng.gen_range(0, 64) as u64,
        },
        2 => {
            // Unconstrained ranges: src and dst may overlap in either
            // direction (memmove semantics), at any relative alignment.
            let len = rng.gen_range(0, 96) as u64;
            Op::Copy {
                src: rng.gen_range(0, (MEM - 96) as i64) as u64,
                dst: rng.gen_range(0, (MEM - 96) as i64) as u64,
                len,
            }
        }
        _ => Op::Zero {
            addr: rng.gen_range(0, (MEM - 64) as i64) as u64,
            len: rng.gen_range(0, 64) as u64,
        },
    }
}

/// Applies `op` to both the VM memory and the oracle.
fn apply(mem: &SharedMem, oracle: &mut [u8], op: &Op) {
    match *op {
        Op::Write { addr, width, val } => {
            mem.write(addr, width, val);
            let bytes = val.to_le_bytes();
            for i in 0..width as usize {
                oracle[addr as usize + i] = bytes[i];
            }
        }
        Op::Copy { src, dst, len } => {
            mem.copy(src, dst, len);
            oracle.copy_within(src as usize..(src + len) as usize, dst as usize);
        }
        Op::Zero { addr, len } => {
            mem.zero(addr, len);
            oracle[addr as usize..(addr + len) as usize].fill(0);
        }
    }
}

/// Arbitrary interleavings of writes/copies/zeroes leave the memory
/// byte-identical to a plain byte-array model, at every width and
/// alignment (including word-straddling accesses).
#[test]
fn memory_matches_byte_oracle() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x11E1 + case);
        let nops = rng.gen_range(1, 64) as usize;
        let ops: Vec<Op> = (0..nops).map(|_| gen_op(&mut rng)).collect();
        let mem = SharedMem::new(MEM);
        let mut oracle = vec![0u8; MEM as usize];
        for op in &ops {
            apply(&mem, &mut oracle, op);
        }
        for addr in 0..MEM {
            assert_eq!(
                mem.read(addr, 1) as u8,
                oracle[addr as usize],
                "case {case}, byte {addr}: {ops:?}"
            );
        }
        // Wider reads agree too (little-endian composition).
        for addr in (0..MEM - 8).step_by(3) {
            let mut expect = [0u8; 8];
            expect.copy_from_slice(&oracle[addr as usize..addr as usize + 8]);
            assert_eq!(mem.read(addr, 8), u64::from_le_bytes(expect), "case {case}");
        }
    }
}

/// Live allocations never overlap, interior-pointer lookup agrees with
/// the allocation bounds, and freeing everything allows a maximal
/// reallocation (full coalescing).
#[test]
fn heap_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4EA9 + case);
        let sizes: Vec<u64> = (0..rng.gen_range(1, 20))
            .map(|_| rng.gen_range(1, 200) as u64)
            .collect();
        let nfrees = rng.gen_range(0, 12) as usize;

        let h = Heap::new(0, 64 << 10);
        let mut live: Vec<dse_runtime::Allocation> = Vec::new();
        for &s in &sizes {
            let a = h.alloc(s).expect("arena is large enough");
            live.push(a);
        }
        for _ in 0..nfrees {
            if live.is_empty() {
                break;
            }
            let i = rng.gen_index(live.len());
            let a = live.swap_remove(i);
            assert!(h.free(a.base).is_some(), "case {case}");
        }
        // No overlap among the live set.
        let mut sorted = live.clone();
        sorted.sort_by_key(|a| a.base);
        for w in sorted.windows(2) {
            assert!(
                w[0].base + w[0].size <= w[1].base,
                "case {case} overlap: {w:?}"
            );
        }
        // Interior pointers resolve to their allocation; bases match.
        for a in &live {
            let mid = a.base + a.size / 2;
            assert_eq!(h.containing(mid), Some(*a), "case {case}");
            assert_eq!(h.at_base(a.base), Some(*a), "case {case}");
        }
        // Free the rest; the arena coalesces back to one block.
        for a in live {
            assert!(h.free(a.base).is_some(), "case {case}");
        }
        assert_eq!(h.live_bytes(), 0, "case {case}");
        assert!(h.alloc((64 << 10) - 32).is_some(), "case {case}");
    }
}
