//! Executor-pool tests: iteration coverage under the work-stealing
//! scheduler (awkward ranges, both loop modes, both backends), pool
//! lifecycle across back-to-back dispatches, nested-loop inlining, and
//! abort recovery.

use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_runtime::{DoallSchedule, RunReport, ThreadMode, Value, Vm, VmConfig};

/// Compiles `src` with every candidate loop parallelized in `mode`.
fn compile_parallel(src: &str, mode: ParMode) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let cands = dse_ir::loops::find_candidate_loops(&ast).expect("candidates");
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    for c in &cands {
        opts.par.insert(
            c.label.clone(),
            ParLoopSpec {
                mode,
                sync_window: (mode == ParMode::DoAcross).then_some((0, 0)),
            },
        );
    }
    dse_ir::lower_program(&ast, &opts).expect("lowering")
}

fn run_compiled(compiled: CompiledProgram, config: VmConfig) -> (i64, RunReport) {
    let mut vm = Vm::new(compiled, config).expect("vm");
    let report = vm.run().expect("run");
    match report.return_value {
        Some(Value::I(v)) => (v, report),
        other => panic!("expected integer return, got {other:?}"),
    }
}

/// A program whose return value counts coverage violations: cell `i` must
/// be incremented exactly once by iteration `i` (0 = every iteration ran
/// exactly once; a skipped or doubly-executed iteration shows up).
fn coverage_src(iters: i64) -> String {
    format!(
        "int main() {{
            int *a; a = malloc(({n} + 1) * sizeof(int));
            #pragma candidate cover
            for (int i = 0; i < {n}; i++) {{ a[i] = a[i] + 1; }}
            int bad; bad = 0;
            for (int i = 0; i < {n}; i++) {{
                if (a[i] != 1) {{ bad = bad + 1; }}
            }}
            free(a);
            return bad; }}",
        n = iters
    )
}

/// Every iteration of awkward ranges executes exactly once, for DOALL
/// (stealing and static) and DOACROSS, on the pool and on the
/// spawn-per-loop baseline. Ranges: empty, single, fewer iterations than
/// workers (7 on 8 threads), `hi - lo` below one chunk, and a round count.
#[test]
fn awkward_ranges_execute_exactly_once() {
    let cases: &[(ParMode, DoallSchedule)] = &[
        (ParMode::DoAll, DoallSchedule::Stealing),
        (ParMode::DoAll, DoallSchedule::Static),
        (ParMode::DoAcross, DoallSchedule::Stealing),
    ];
    for &iters in &[0i64, 1, 3, 7, 13, 100] {
        let src = coverage_src(iters);
        for &(mode, schedule) in cases {
            let compiled = compile_parallel(&src, mode);
            for backend in [ThreadMode::Pool, ThreadMode::SpawnPerLoop] {
                let (bad, report) = run_compiled(
                    compiled.clone(),
                    VmConfig {
                        nthreads: 8,
                        thread_mode: backend,
                        doall_schedule: schedule,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    bad, 0,
                    "coverage violated: {iters} iters, {mode:?}/{schedule:?}/{backend:?}"
                );
                if backend == ThreadMode::SpawnPerLoop {
                    assert_eq!(report.pool.workers, 0, "baseline backend has no pool");
                    assert_eq!(report.pool.dispatches, 0);
                }
            }
        }
    }
}

/// Back-to-back dispatches reuse the same persistent workers: exactly
/// `nthreads - 1` threads are spawned for the whole run however many loops
/// execute, and each dispatch wakes each worker exactly once.
#[test]
fn back_to_back_dispatches_reuse_workers() {
    let src = "int main() {
        int *a; a = malloc(100 * sizeof(int));
        #pragma candidate l0
        for (int i = 0; i < 100; i++) { a[i] = a[i] + 1; }
        #pragma candidate l1
        for (int i = 0; i < 100; i++) { a[i] = a[i] + 1; }
        #pragma candidate l2
        for (int i = 0; i < 100; i++) { a[i] = a[i] + 1; }
        #pragma candidate l3
        for (int i = 0; i < 100; i++) { a[i] = a[i] + 1; }
        #pragma candidate l4
        for (int i = 0; i < 100; i++) { a[i] = a[i] + 1; }
        int s; s = 0;
        for (int i = 0; i < 100; i++) { s += a[i]; }
        free(a);
        return s; }";
    let compiled = compile_parallel(src, ParMode::DoAll);
    let (v, report) = run_compiled(
        compiled,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    );
    assert_eq!(v, 500, "all five loops ran over all 100 cells");
    let p = report.pool;
    assert_eq!(
        p.workers, 3,
        "one spawn per worker for the whole run: {p:?}"
    );
    assert_eq!(p.dispatches, 5, "one dispatch per parallel loop: {p:?}");
    assert_eq!(
        p.wakeups,
        p.dispatches * p.workers,
        "each dispatch wakes each worker exactly once: {p:?}"
    );
}

/// A parallel loop nested inside an executing parallel loop runs inline on
/// the worker that reaches it — only the outer loop is dispatched.
#[test]
fn nested_parallel_loops_run_inline() {
    let src = "int main() {
        int *a; a = malloc(16 * 16 * sizeof(int));
        #pragma candidate outer
        for (int i = 0; i < 16; i++) {
            #pragma candidate inner
            for (int j = 0; j < 16; j++) { a[i * 16 + j] = i + j; }
        }
        int s; s = 0;
        for (int k = 0; k < 16 * 16; k++) { s += a[k]; }
        free(a);
        return s; }";
    let serial = {
        let compiled = compile_parallel(src, ParMode::DoAll);
        run_compiled(compiled, VmConfig::default()).0
    };
    let compiled = compile_parallel(src, ParMode::DoAll);
    let (v, report) = run_compiled(
        compiled,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    );
    assert_eq!(v, serial);
    assert_eq!(
        report.pool.dispatches, 1,
        "inner loops run inline, not through the pool: {:?}",
        report.pool
    );
}

/// A trapping worker's real error wins over its peers' abort errors, and
/// the same `Vm` (same pool state, contexts dirty from the abort) executes
/// a later parallel loop correctly.
#[test]
fn trapping_worker_aborts_peers_and_pool_stays_usable() {
    // `g` persists in VM memory across `run` calls: the first run takes the
    // trapping branch, the second skips it and must run cleanly on the
    // reopened pool.
    let src = "int g;
        int main() {
        int *a; a = malloc(64 * sizeof(int));
        if (g == 0) {
            g = 1;
            int z; z = 0;
            #pragma candidate boom
            for (int i = 0; i < 64; i++) { a[i] = i / z; }
        }
        #pragma candidate fine
        for (int i = 0; i < 64; i++) { a[i] = i * 2; }
        int s; s = 0;
        for (int i = 0; i < 64; i++) { s += a[i]; }
        free(a);
        return s % 1000; }";
    let compiled = compile_parallel(src, ParMode::DoAll);
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    )
    .expect("vm");
    let e = vm.run().expect_err("first run traps");
    assert!(
        e.msg.contains("division"),
        "the real trap is reported, not the abort: {e}"
    );
    let report = vm.run().expect("second run succeeds on the reused pool");
    // sum(0..64) * 2 = 4032
    assert_eq!(report.return_value, Some(Value::I(32)));
    assert_eq!(
        report.pool.workers, 6,
        "each run spawns its own scope of 3 workers: {:?}",
        report.pool
    );
    assert_eq!(report.pool.dispatches, 2, "one loop dispatched per run");
}

/// A skewed workload (early iterations vastly more expensive) produces the
/// same result under work stealing as under static chunking.
#[test]
fn stealing_matches_static_on_skewed_work() {
    // The skewed work runs in a function so its locals live in a frame on
    // each worker's private stack (loop-body scalars sit in the shared
    // enclosing frame until the expansion pass privatizes them).
    let src = "int burn(int i) {
            int w; w = i < 32 ? 400 : 1;
            int acc; acc = 0;
            for (int k = 0; k < w; k++) { acc = acc + i + k; }
            return acc;
        }
        int main() {
        int *a; a = malloc(256 * sizeof(int));
        #pragma candidate skew
        for (int i = 0; i < 256; i++) { a[i] = burn(i); }
        int s; s = 0;
        for (int i = 0; i < 256; i++) { s += a[i]; }
        free(a);
        return s % 100000; }";
    let serial = {
        let compiled = compile_parallel(src, ParMode::DoAll);
        run_compiled(compiled, VmConfig::default()).0
    };
    let mut results = Vec::new();
    for schedule in [DoallSchedule::Stealing, DoallSchedule::Static] {
        let compiled = compile_parallel(src, ParMode::DoAll);
        let (v, _) = run_compiled(
            compiled,
            VmConfig {
                nthreads: 8,
                doall_schedule: schedule,
                ..Default::default()
            },
        );
        results.push(v);
    }
    assert_eq!(results[0], serial, "stealing matches serial");
    assert_eq!(results[1], serial, "static matches serial");
}
