//! Concurrency stress and randomized property tests for the sharded heap.
//!
//! The multi-threaded tests hammer one [`Heap`] from many threads at once —
//! the scenario the size-class front-ends and the sharded registry exist
//! for — while a shared interval map cross-checks that no two live
//! allocations ever overlap. The single-threaded property test drives
//! random alloc/free/realloc sequences and then verifies the two global
//! invariants the allocator must keep: live blocks are disjoint, and
//! freeing everything lets one maximal block be carved again (magazines
//! and bins scavenge back into the coalesced free map).
//!
//! All randomness comes from the workspace PRNG with fixed seeds, so any
//! failure reproduces exactly.

use dse_runtime::Heap;
use dse_workloads::rng::Rng;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Shared overlap oracle: base -> end (exclusive, block-rounded bounds).
struct IntervalMap(Mutex<BTreeMap<u64, u64>>);

impl IntervalMap {
    fn new() -> IntervalMap {
        IntervalMap(Mutex::new(BTreeMap::new()))
    }

    /// Registers `[base, end)`, panicking when it overlaps a live interval.
    fn insert(&self, base: u64, end: u64) {
        let mut m = self.0.lock().unwrap();
        if let Some((&pb, &pe)) = m.range(..=base).next_back() {
            assert!(
                pe <= base,
                "[{base:#x}, {end:#x}) overlaps [{pb:#x}, {pe:#x})"
            );
        }
        if let Some((&nb, _)) = m.range(base..).next() {
            assert!(end <= nb, "[{base:#x}, {end:#x}) overlaps block at {nb:#x}");
        }
        m.insert(base, end);
    }

    fn remove(&self, base: u64) {
        self.0.lock().unwrap().remove(&base);
    }
}

/// Eight threads allocate, probe and free concurrently; every allocation
/// handed out is disjoint from every other live one, interior pointers
/// resolve to the right block while it is live, and after the storm the
/// arena coalesces back to a single maximal block.
#[test]
fn concurrent_alloc_free_containing_stress() {
    const NTHREADS: usize = 8;
    const OPS: usize = 3_000;
    const ARENA: u64 = 64 << 20;

    let heap = Heap::new(0, ARENA);
    let oracle = IntervalMap::new();

    std::thread::scope(|scope| {
        for t in 0..NTHREADS {
            let heap = &heap;
            let oracle = &oracle;
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0x57E5 + t as u64);
                let mut live: Vec<dse_runtime::Allocation> = Vec::new();
                for _ in 0..OPS {
                    let roll = rng.gen_index(10);
                    if roll < 6 || live.is_empty() {
                        // Mostly class-sized, sometimes large enough to
                        // bypass the front-end caches entirely.
                        let size = if rng.gen_index(8) == 0 {
                            rng.gen_range(4097, 32 << 10) as u64
                        } else {
                            rng.gen_range(1, 4096) as u64
                        };
                        let a = heap.alloc(size).expect("arena is large enough");
                        assert!(a.size >= size && a.block >= a.size);
                        oracle.insert(a.base, a.base + a.block);
                        live.push(a);
                    } else if roll < 9 {
                        let i = rng.gen_index(live.len());
                        let a = live.swap_remove(i);
                        oracle.remove(a.base);
                        let f = heap.free(a.base).expect("double free");
                        assert_eq!(f.base, a.base);
                        assert_eq!(f.block, a.block);
                    } else {
                        // Interior-pointer lookup storm on our own blocks
                        // (another thread's concurrent churn must not
                        // perturb the result).
                        let i = rng.gen_index(live.len());
                        let a = live[i];
                        let off = rng.gen_range(0, a.block as i64) as u64;
                        assert_eq!(heap.containing(a.base + off), Some(a));
                        assert_eq!(heap.at_base(a.base), Some(a));
                    }
                }
                for a in live {
                    oracle.remove(a.base);
                    heap.free(a.base).expect("final free");
                }
            });
        }
    });

    assert_eq!(heap.live_bytes(), 0);
    // Everything the magazines and bins cached scavenges back; the arena
    // must coalesce into one block big enough for a maximal request.
    assert!(
        heap.alloc(ARENA - 64).is_some(),
        "full-arena reuse after stress"
    );
    let c = heap.contention();
    assert!(c.cache_hits + c.cache_misses > 0, "front-end saw traffic");
}

/// Concurrent lookups while a single writer churns: `containing` must
/// never return a block that does not (at that moment or shortly before)
/// contain the probed address. Readers probe addresses they know are
/// inside blocks the writer will not free.
#[test]
fn concurrent_lookup_storm_with_churn() {
    const ARENA: u64 = 8 << 20;
    let heap = Heap::new(0, ARENA);

    // Pinned blocks: never freed, probed by readers throughout.
    let pinned: Vec<dse_runtime::Allocation> = (0..64)
        .map(|i| heap.alloc(64 + (i % 7) * 100).unwrap())
        .collect();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        for t in 0..4 {
            let heap = &heap;
            let pinned = &pinned;
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xC0FE + t as u64);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let a = pinned[rng.gen_index(pinned.len())];
                    let off = rng.gen_range(0, a.block as i64) as u64;
                    assert_eq!(heap.containing(a.base + off), Some(a), "pinned block moved");
                }
            });
        }
        // Writer: churn allocations around the pinned set.
        let mut rng = Rng::seed_from_u64(0xD00D);
        let mut live = Vec::new();
        for _ in 0..20_000 {
            if live.len() < 32 && rng.gen_index(2) == 0 {
                live.push(heap.alloc(rng.gen_range(1, 2048) as u64).unwrap());
            } else if let Some(a) = live.pop() {
                heap.free(a.base).unwrap();
            }
        }
        for a in live {
            heap.free(a.base).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    for a in pinned {
        heap.free(a.base).unwrap();
    }
    assert_eq!(heap.live_bytes(), 0);
}

/// Random alloc/free/realloc sequences keep the live set disjoint, keep
/// interior-pointer lookup exact, and always coalesce back to a full
/// arena once everything is freed — across 256 seeded cases.
#[test]
fn property_alloc_free_realloc_sequences() {
    const ARENA: u64 = 1 << 20;
    const CASES: u64 = 256;

    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xA110C + case);
        let heap = Heap::new(0, ARENA);
        let mut live: Vec<dse_runtime::Allocation> = Vec::new();
        let nops = rng.gen_range(10, 120) as usize;

        for _ in 0..nops {
            match rng.gen_index(4) {
                0 | 1 => {
                    let size = rng.gen_range(1, 9000) as u64;
                    let a = heap.alloc(size).expect("arena is large enough");
                    live.push(a);
                }
                2 if !live.is_empty() => {
                    let i = rng.gen_index(live.len());
                    let a = live.swap_remove(i);
                    assert!(heap.free(a.base).is_some(), "case {case}");
                }
                3 if !live.is_empty() => {
                    // realloc: carve the new block before releasing the
                    // old one, as the VM's realloc builtin does.
                    let i = rng.gen_index(live.len());
                    let old = live[i];
                    let size = rng.gen_range(1, 9000) as u64;
                    let a = heap.alloc(size).expect("arena is large enough");
                    live[i] = a;
                    assert!(heap.free(old.base).is_some(), "case {case}");
                }
                _ => {}
            }

            // Invariant: the live set is pairwise disjoint on the
            // block-rounded bounds the allocator hands out.
            let mut sorted: Vec<_> = live.iter().map(|a| (a.base, a.base + a.block)).collect();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[0].1 <= w[1].0, "case {case} overlap: {w:?}");
            }
        }

        // Lookup is exact on every live block's boundary addresses.
        for a in &live {
            assert_eq!(heap.containing(a.base), Some(*a), "case {case}");
            assert_eq!(
                heap.containing(a.base + a.block - 1),
                Some(*a),
                "case {case}"
            );
            let next_is_start = live.iter().any(|b| b.base == a.base + a.block);
            if !next_is_start {
                assert_ne!(heap.containing(a.base + a.block), Some(*a), "case {case}");
            }
        }

        for a in live {
            assert!(heap.free(a.base).is_some(), "case {case}");
        }
        assert_eq!(heap.live_bytes(), 0, "case {case}");
        assert!(
            heap.alloc(ARENA - 64).is_some(),
            "case {case}: full-arena reuse after free-all"
        );
    }
}
