//! Integration tests for the runtime tracing and profiling instruments:
//! event capture across DOALL and DOACROSS dispatches, ring overflow
//! accounting under a tiny capacity, the off-by-default contract, and the
//! attributing opcode profiler.

use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_runtime::{EventKind, Value, Vm, VmConfig, HEAP_TID, SERIAL_LOOP};

/// Compiles `src` with every candidate loop parallelized in `mode`.
fn compile_parallel(src: &str, mode: ParMode) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let cands = dse_ir::loops::find_candidate_loops(&ast).expect("candidates");
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    for c in &cands {
        opts.par.insert(
            c.label.clone(),
            ParLoopSpec {
                mode,
                sync_window: (mode == ParMode::DoAcross).then_some((0, 0)),
            },
        );
    }
    dse_ir::lower_program(&ast, &opts).expect("lowering")
}

fn src(iters: i64) -> String {
    format!(
        "int main() {{
            int *a; a = malloc({n} * sizeof(int));
            #pragma candidate work
            for (int i = 0; i < {n}; i++) {{ a[i] = a[i] + i; }}
            int s; s = 0;
            for (int i = 0; i < {n}; i++) {{ s += a[i]; }}
            free(a);
            return s % 1000; }}",
        n = iters
    )
}

/// A traced DOALL run captures the dispatch, per-worker loop spans and
/// pool lifecycle events, all with sane payloads: timestamps sorted,
/// worker ids within the pool (or the allocator pseudo-id), loop ids
/// pointing into the compiled program.
#[test]
fn doall_trace_captures_dispatch_and_loop_spans() {
    let compiled = compile_parallel(&src(200), ParMode::DoAll);
    let nloops = compiled.loops.len();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            trace: true,
            ..Default::default()
        },
    )
    .expect("vm");
    vm.run().expect("run");
    let (events, dropped) = vm.take_trace();
    assert_eq!(dropped, 0, "default capacity never overflows this workload");
    assert!(!events.is_empty());

    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert!(count(EventKind::Dispatch) >= 1, "the loop was dispatched");
    assert!(
        count(EventKind::LoopRun) >= 1,
        "at least the master recorded a loop span"
    );
    assert!(count(EventKind::Park) >= 1, "workers park before dispatch");

    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns, "take_trace sorts by start time");
    }
    for e in &events {
        assert!(e.tid < 4 || e.tid == HEAP_TID, "worker id in range: {e:?}");
        if matches!(e.kind, EventKind::Dispatch | EventKind::LoopRun) {
            assert!(
                (e.a as usize) < nloops,
                "loop id points into the program: {e:?}"
            );
        }
        if !e.kind.is_span() {
            assert_eq!(e.dur_ns, 0, "instant events carry no duration: {e:?}");
        }
    }
}

/// A traced DOACROSS run records the cross-iteration ordering traffic:
/// every iteration past the first posts, and waits pair with posts on the
/// same loop.
#[test]
fn doacross_trace_records_wait_and_post() {
    let chain = "int main() {
        int *a; a = malloc(128 * sizeof(int));
        a[0] = 1;
        #pragma candidate chain
        for (int i = 1; i < 128; i++) { a[i] = a[i - 1] + 1; }
        int last; last = a[127];
        free(a);
        return last; }";
    let compiled = compile_parallel(chain, ParMode::DoAcross);
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            trace: true,
            ..Default::default()
        },
    )
    .expect("vm");
    let report = vm.run().expect("run");
    assert_eq!(report.return_value, Some(Value::I(128)));
    let (events, _) = vm.take_trace();
    let posts: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Post)
        .collect();
    assert_eq!(posts.len(), 127, "one post per iteration in 1..128");
    let waits = events
        .iter()
        .filter(|e| e.kind == EventKind::WaitSpan)
        .count();
    assert!(waits >= 1, "the ordered chain forces at least one wait");
    for p in &posts {
        assert!(p.b >= 1 && p.b < 128, "posted iteration in range: {p:?}");
    }
}

/// With a tiny per-worker ring, a post-heavy DOACROSS loop overflows:
/// `take_trace` reports the overwrites and the surviving events are the
/// most recent window, still time-sorted.
#[test]
fn tiny_ring_reports_overflow_drops() {
    let chain = "int main() {
        int *a; a = malloc(256 * sizeof(int));
        a[0] = 1;
        #pragma candidate chain
        for (int i = 1; i < 256; i++) { a[i] = a[i - 1] + 1; }
        int last; last = a[255];
        free(a);
        return last; }";
    let compiled = compile_parallel(chain, ParMode::DoAcross);
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 2,
            trace: true,
            trace_capacity: 4,
            ..Default::default()
        },
    )
    .expect("vm");
    vm.run().expect("run");
    let (events, dropped) = vm.take_trace();
    assert!(
        dropped > 0,
        "255 ordered iterations through 4-slot rings must overwrite"
    );
    assert!(!events.is_empty(), "the most recent window survives");
    for w in events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns);
    }
}

/// Tracing and profiling are off by default: the same workload yields an
/// empty trace and an empty profile, and a second traced `run` on one VM
/// starts from a drained sink.
#[test]
fn instruments_are_off_by_default() {
    let compiled = compile_parallel(&src(64), ParMode::DoAll);
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    )
    .expect("vm");
    vm.run().expect("run");
    let (events, dropped) = vm.take_trace();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
    assert!(vm.opcode_profile().is_empty());
}

/// The opcode profiler attributes the hot loop's instructions to its loop
/// id with a per-iteration cost histogram covering every iteration.
#[test]
fn opcode_profile_attributes_hot_loop() {
    let compiled = compile_parallel(&src(200), ParMode::DoAll);
    let nloops = compiled.loops.len();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            opcode_profile: true,
            ..Default::default()
        },
    )
    .expect("vm");
    vm.run().expect("run");
    let profiles = vm.opcode_profile();
    assert!(!profiles.is_empty());
    let work = profiles
        .iter()
        .find(|p| p.loop_id != SERIAL_LOOP && (p.loop_id as usize) < nloops)
        .expect("the parallel loop appears in the profile");
    assert!(work.total_instructions() > 0);
    assert_eq!(
        work.iter_hist.count(),
        200,
        "one histogram sample per iteration"
    );
    assert!(work.iter_hist.percentile(0.5) > 0);
    let serial = profiles
        .iter()
        .find(|p| p.loop_id == SERIAL_LOOP)
        .expect("straight-line code is attributed to the serial bucket");
    assert!(serial.total_instructions() > 0);
}
