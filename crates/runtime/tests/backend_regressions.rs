//! Regression tests for the execution-backend split: type-confused
//! bytecode must *trap*, not panic, and a trapped run must leave the VM
//! usable (outputs readable, reruns possible) under both backends.

use dse_ir::bytecode::Instr;
use dse_ir::lower::LowerOptions;
use dse_runtime::{BackendKind, Vm, VmConfig};

fn compile(src: &str) -> dse_ir::bytecode::CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    dse_ir::lower_program(&ast, &LowerOptions::default()).expect("lowering")
}

fn cfg(backend: BackendKind) -> VmConfig {
    VmConfig {
        backend,
        ..Default::default()
    }
}

/// A sound lowering never emits this shape; it models a lowering bug (or a
/// hostile daemon request): an integer add whose left operand is a float.
fn type_confused_program() -> dse_ir::bytecode::CompiledProgram {
    let mut prog = compile("int main() { return 1 + 2; }");
    let pc = prog
        .code
        .iter()
        .position(|i| matches!(i, Instr::PushI(1)))
        .expect("PushI(1) in reference encoding");
    prog.code[pc] = Instr::PushF(1.5);
    prog
}

#[test]
fn type_confused_bytecode_traps_on_stack_backend() {
    let mut vm = Vm::new(type_confused_program(), cfg(BackendKind::Stack)).expect("vm");
    let err = vm.run().expect_err("must trap, not panic");
    assert!(
        err.to_string().contains("type confusion"),
        "wrong trap: {err}"
    );
}

#[test]
fn type_confused_bytecode_is_rejected_by_register_lowering() {
    // The register translator types every stack slot; a float flowing into
    // an integer op is a join/operand mismatch, reported as a construction
    // error — never a panic inside the daemon.
    let err = Vm::new(type_confused_program(), cfg(BackendKind::Reg))
        .err()
        .expect("register lowering must reject type-confused bytecode");
    assert!(
        err.to_string().contains("register lowering failed"),
        "wrong error: {err}"
    );
}

#[test]
fn type_confused_store_traps_on_stack_backend() {
    // Store a float through an int-typed store: `is_float: false` with a
    // float on top of the operand stack.
    let mut prog = compile("int main() { int x = 7; return x; }");
    let pc = prog
        .code
        .iter()
        .position(|i| matches!(i, Instr::PushI(7)))
        .expect("PushI(7) in reference encoding");
    prog.code[pc] = Instr::PushF(7.0);
    let mut vm = Vm::new(prog, cfg(BackendKind::Stack)).expect("vm");
    let err = vm.run().expect_err("must trap, not panic");
    assert!(
        err.to_string().contains("type confusion"),
        "wrong trap: {err}"
    );
}

#[test]
fn trapped_run_leaves_vm_usable() {
    // The program emits output, then traps. Partial outputs must stay
    // readable (the accessors recover poisoned locks) and a rerun must
    // reach the same trap instead of wedging or panicking.
    let src = r#"
        int main() {
            int z = in_long(0);
            out_long(41);
            print_long(99);
            return 5 / z;
        }
    "#;
    for backend in [BackendKind::Stack, BackendKind::Reg] {
        let mut config = cfg(backend);
        config.inputs_int = vec![0];
        let mut vm = Vm::new(compile(src), config).expect("vm");
        let err = vm.run().expect_err("division by zero must trap");
        assert!(
            err.to_string().contains("division by zero"),
            "{:?}: wrong trap: {err}",
            backend
        );
        assert_eq!(vm.outputs_int(), vec![41], "{backend:?}");
        assert!(vm.console().contains("99"), "{backend:?}");
        let again = vm.run().expect_err("rerun must trap identically");
        assert_eq!(err.to_string(), again.to_string(), "{backend:?}");
        // Outputs accumulate across runs; the second one appended too.
        assert_eq!(vm.outputs_int(), vec![41, 41], "{backend:?}");
    }
}

#[test]
fn both_backends_report_the_same_trap_pc() {
    // Register traps are mapped back through the origin table, so a trap
    // reports the *stack* pc regardless of backend — the daemon's error
    // messages (and site attribution) stay backend-independent.
    let src = r#"
        int main() {
            return in_long(0) / in_long(1);
        }
    "#;
    let mut errs = Vec::new();
    for backend in [BackendKind::Stack, BackendKind::Reg] {
        let mut config = cfg(backend);
        config.inputs_int = vec![i64::MIN, -1];
        let mut vm = Vm::new(compile(src), config).expect("vm");
        errs.push(vm.run().expect_err("overflow must trap").to_string());
    }
    assert_eq!(errs[0], errs[1]);
}

#[test]
fn env_selects_the_register_backend() {
    assert_eq!(BackendKind::parse("reg"), Some(BackendKind::Reg));
    assert_eq!(BackendKind::parse("register"), Some(BackendKind::Reg));
    assert_eq!(BackendKind::parse("stack"), Some(BackendKind::Stack));
    assert_eq!(BackendKind::parse("asm"), None);
}

#[test]
fn register_backend_matches_stack_on_a_recursive_workload() {
    let src = r#"
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            out_long(fib(20));
            return 0;
        }
    "#;
    let mut outs = Vec::new();
    for backend in [BackendKind::Stack, BackendKind::Reg] {
        let mut vm = Vm::new(compile(src), cfg(backend)).expect("vm");
        vm.run().expect("run");
        outs.push(vm.outputs_int());
    }
    assert_eq!(outs[0], vec![6765]);
    assert_eq!(outs[0], outs[1]);
}
