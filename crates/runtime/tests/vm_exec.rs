//! End-to-end execution tests: Cee source → AST → bytecode → VM.

use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_runtime::{Value, Vm, VmConfig, VmError};

/// Compiles and runs `src` serially, returning `main`'s value.
fn run(src: &str) -> i64 {
    run_with(src, VmConfig::default()).0
}

fn run_with(src: &str, config: VmConfig) -> (i64, Vm) {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).expect("lowering");
    let mut vm = Vm::new(compiled, config).expect("vm");
    let report = vm.run().expect("run");
    let v = match report.return_value {
        Some(Value::I(v)) => v,
        other => panic!("expected integer return, got {other:?}"),
    };
    (v, vm)
}

fn run_err(src: &str) -> VmError {
    run_err_with(src, VmConfig::default())
}

fn run_err_with(src: &str, config: VmConfig) -> VmError {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).expect("lowering");
    let mut vm = Vm::new(compiled, config).expect("vm");
    vm.run().expect_err("expected trap")
}

/// Compiles with every candidate loop parallelized (given mode) and runs on
/// `n` threads.
fn run_parallel(src: &str, n: u32, mode: ParMode) -> i64 {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let cands = dse_ir::loops::find_candidate_loops(&ast).expect("candidates");
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    for c in &cands {
        opts.par.insert(
            c.label.clone(),
            ParLoopSpec {
                mode,
                sync_window: None,
            },
        );
    }
    let compiled = dse_ir::lower_program(&ast, &opts).expect("lowering");
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: n,
            ..Default::default()
        },
    )
    .expect("vm");
    let report = vm.run().expect("run");
    match report.return_value {
        Some(Value::I(v)) => v,
        other => panic!("expected integer return, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// scalars and control flow
// ---------------------------------------------------------------------------

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
    assert_eq!(run("int main() { return (2 + 3) * 4 % 7; }"), 6);
    assert_eq!(run("int main() { return 7 / -2; }"), -3);
    assert_eq!(run("int main() { return -7 % 3; }"), -1);
}

#[test]
fn bitwise_and_shifts() {
    assert_eq!(run("int main() { return (0xF0 | 0x0F) & 0x3C; }"), 0x3C);
    assert_eq!(run("int main() { return 1 << 10; }"), 1024);
    assert_eq!(run("int main() { return -8 >> 1; }"), -4);
    assert_eq!(run("int main() { return 0xFF ^ 0x0F; }"), 0xF0);
    assert_eq!(run("int main() { return (int)(~0) + 2; }"), 1);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(
        run("int main() { return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5); }"),
        3
    );
    assert_eq!(
        run("int main() { return (1 && 2) + (0 || 3 > 2) + !5 + !0; }"),
        3
    );
}

#[test]
fn short_circuit_avoids_side_effects() {
    assert_eq!(
        run("int g; int bump() { g = g + 1; return 1; }
             int main() { int x; x = 0 && bump(); x = 1 || bump(); return g; }"),
        0
    );
}

#[test]
fn ternary_and_nested_ifs() {
    assert_eq!(
        run("int main() { int a; a = 7; return a > 5 ? a * 2 : a; }"),
        14
    );
    assert_eq!(
        run("int main() { int a; a = 3;
              if (a == 1) { return 10; } else if (a == 3) { return 30; }
              return 0; }"),
        30
    );
}

#[test]
fn loops_while_do_for() {
    assert_eq!(
        run("int main() { int s; int i; s = 0; i = 0;
              while (i < 10) { s += i; i++; } return s; }"),
        45
    );
    assert_eq!(
        run("int main() { int s; int i; s = 0; i = 0;
              do { s += i; i++; } while (i < 5); return s; }"),
        10
    );
    assert_eq!(
        run("int main() { int s; s = 0;
              for (int i = 1; i <= 5; i++) { s += i * i; } return s; }"),
        55
    );
}

#[test]
fn break_and_continue() {
    assert_eq!(
        run("int main() { int s; s = 0;
              for (int i = 0; i < 100; i++) {
                if (i == 5) { break; }
                if (i % 2 == 0) { continue; }
                s += i;
              } return s; }"),
        4
    );
}

#[test]
fn increment_decrement_semantics() {
    assert_eq!(run("int main() { int i; i = 5; return i++ + i; }"), 11);
    assert_eq!(run("int main() { int i; i = 5; return ++i + i; }"), 12);
    assert_eq!(run("int main() { int i; i = 5; return i-- - --i; }"), 2);
}

#[test]
fn compound_assignment_forms() {
    assert_eq!(
        run("int main() { int x; x = 10;
              x += 5; x -= 3; x *= 4; x /= 2; x %= 13;
              x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 3;
              return x; }"),
        13
    );
}

// ---------------------------------------------------------------------------
// integer widths and casts
// ---------------------------------------------------------------------------

#[test]
fn char_and_short_truncate_and_sign_extend() {
    assert_eq!(run("int main() { char c; c = 300; return c; }"), 44);
    assert_eq!(run("int main() { char c; c = 200; return c; }"), -56);
    assert_eq!(run("int main() { short s; s = 70000; return s; }"), 4464);
    assert_eq!(run("int main() { return (char)511; }"), -1);
}

#[test]
fn float_arithmetic_and_conversion() {
    assert_eq!(
        run("int main() { float x; x = 7.5; return (int)(x * 2.0); }"),
        15
    );
    assert_eq!(
        run("int main() { float x; x = 1; return (int)((x + 0.5) * 4.0); }"),
        6
    );
    assert_eq!(run("int main() { return (int)fsqrt(144.0); }"), 12);
    assert_eq!(run("int main() { return (int)fabs(0.0 - 8.5); }"), 8);
}

#[test]
fn float_comparisons_drive_branches() {
    assert_eq!(
        run("int main() { float a; a = 0.1; float b; b = 0.2;
              if (a + b > 0.25) { return 1; } return 0; }"),
        1
    );
}

// ---------------------------------------------------------------------------
// functions
// ---------------------------------------------------------------------------

#[test]
fn function_calls_and_recursion() {
    assert_eq!(
        run(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             int main() { return fib(15); }"
        ),
        610
    );
}

#[test]
fn mutual_recursion() {
    assert_eq!(
        run("int is_odd(int n);
             int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
             int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
             int main() { return is_even(10) * 10 + is_odd(7); }"
            .replace("int is_odd(int n);", "")
            .as_str()),
        11
    );
}

#[test]
fn arguments_convert_to_param_types() {
    assert_eq!(
        run("int trunc8(char c) { return c; }
             int main() { return trunc8(300); }"),
        44
    );
}

#[test]
fn void_function_and_globals() {
    assert_eq!(
        run("int counter; void tick() { counter += 1; }
             int main() { tick(); tick(); tick(); return counter; }"),
        3
    );
}

#[test]
fn stack_overflow_traps() {
    let e = run_err("int inf(int n) { return inf(n + 1); } int main() { return inf(0); }");
    assert!(e.msg.contains("stack overflow"), "{e}");
}

// ---------------------------------------------------------------------------
// memory: pointers, heap, arrays, structs
// ---------------------------------------------------------------------------

#[test]
fn address_of_and_deref() {
    assert_eq!(
        run("void set(int *p, int v) { *p = v; }
             int main() { int x; set(&x, 99); return x; }"),
        99
    );
}

#[test]
fn malloc_write_read_free() {
    assert_eq!(
        run("int main() { int *p; p = malloc(10 * sizeof(int));
              for (int i = 0; i < 10; i++) { p[i] = i * i; }
              int s; s = 0;
              for (int i = 0; i < 10; i++) { s += p[i]; }
              free(p); return s; }"),
        285
    );
}

#[test]
fn calloc_zeroes() {
    assert_eq!(
        run("int main() { long *p; p = calloc(8, sizeof(long));
              long s; s = 0;
              for (int i = 0; i < 8; i++) { s += p[i]; }
              free(p); return (int)s; }"),
        0
    );
}

/// Regression: `calloc(-2, -3)` multiplied to +6 and passed the old
/// `t >= 0` overflow filter, silently allocating 6 bytes. Negative
/// operands must trap before the multiplication.
#[test]
fn calloc_negative_operands_trap() {
    let e = run_err("int main() { int *p; p = calloc(-2, -3); return 0; }");
    assert!(
        e.msg.contains("calloc with negative operand"),
        "unexpected trap: {}",
        e.msg
    );
    let e = run_err("int main() { int *p; p = calloc(4, -1); return 0; }");
    assert!(
        e.msg.contains("calloc with negative operand"),
        "unexpected trap: {}",
        e.msg
    );
}

#[test]
fn calloc_overflow_still_traps() {
    let e = run_err("int main() { long *p; p = calloc(4611686018427387904, 4); return 0; }");
    assert!(e.msg.contains("calloc size overflow"), "{}", e.msg);
}

#[test]
fn realloc_preserves_prefix() {
    assert_eq!(
        run("int main() { int *p; p = malloc(4 * sizeof(int));
              p[0] = 10; p[1] = 20; p[2] = 30; p[3] = 40;
              p = realloc(p, 8 * sizeof(int));
              p[7] = 5;
              int s; s = p[0] + p[1] + p[2] + p[3] + p[7];
              free(p); return s; }"),
        105
    );
}

#[test]
fn pointer_arithmetic_and_difference() {
    assert_eq!(
        run("int main() { int *p; p = malloc(10 * sizeof(int));
              int *q; q = p + 7;
              *q = 3; *(p + 2) = 4;
              long d; d = q - p;
              int r; r = (int)d * 10 + p[7] + p[2];
              free(p); return r; }"),
        77
    );
}

#[test]
fn global_arrays_with_initializers() {
    assert_eq!(
        run("int table[5] = {10, 20, 30};
             int main() { return table[0] + table[1] + table[2] + table[3] + table[4]; }"),
        60
    );
}

#[test]
fn multidimensional_local_array() {
    assert_eq!(
        run("int main() { int m[3][4];
              for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { m[i][j] = i * 4 + j; }
              }
              int s; s = 0;
              for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { s += m[i][j]; }
              }
              return s; }"),
        66
    );
}

#[test]
fn struct_fields_and_pointers() {
    assert_eq!(
        run("struct Point { int x; int y; };
             int main() { struct Point p; p.x = 3; p.y = 4;
               struct Point *q; q = &p;
               q->x = q->x * 10;
               return p.x + p.y; }"),
        34
    );
}

#[test]
fn struct_assignment_copies_bytes() {
    assert_eq!(
        run("struct S { int a; long b; char c; };
             int main() { struct S x; struct S y;
               x.a = 1; x.b = 2; x.c = 3;
               y = x;
               x.a = 100;
               return y.a + (int)y.b + y.c; }"),
        6
    );
}

#[test]
fn linked_list_build_and_sum() {
    assert_eq!(
        run("struct Node { int v; struct Node *next; };
             int main() {
               struct Node *head; head = 0;
               for (int i = 1; i <= 5; i++) {
                 struct Node *n; n = malloc(sizeof(struct Node));
                 n->v = i; n->next = head; head = n;
               }
               int s; s = 0;
               while (head) {
                 s += head->v;
                 struct Node *d; d = head; head = head->next; free(d);
               }
               return s; }"),
        15
    );
}

#[test]
fn buffer_recast_short_view_of_int_buffer() {
    // The 256.bzip2 `zptr` idiom that motivates bonded-mode expansion.
    assert_eq!(
        run("int main() {
               int *zptr; zptr = malloc(4 * sizeof(int));
               zptr[0] = 0x00010002;
               short *v; v = (short*)zptr;
               int lo; lo = v[0];
               int hi; hi = v[1];
               free(zptr);
               return hi * 100 + lo; }"),
        102
    );
}

#[test]
fn nested_struct_access() {
    assert_eq!(
        run("struct In { int a; int b; };
             struct Out { struct In in; int c; };
             int main() { struct Out o;
               o.in.a = 1; o.in.b = 2; o.c = 3;
               struct Out *p; p = &o;
               return p->in.a + p->in.b + p->c; }"),
        6
    );
}

#[test]
fn null_deref_traps() {
    let e = run_err("int main() { int *p; p = 0; return *p; }");
    assert!(e.msg.contains("invalid load"), "{e}");
}

#[test]
fn invalid_free_traps() {
    let e = run_err("int main() { int x; free(&x); return 0; }");
    assert!(e.msg.contains("invalid"), "{e}");
}

#[test]
fn division_by_zero_traps() {
    let e = run_err("int main() { int z; z = 0; return 5 / z; }");
    assert!(e.msg.contains("division"), "{e}");
}

// ---------------------------------------------------------------------------
// host I/O
// ---------------------------------------------------------------------------

#[test]
fn inputs_and_outputs() {
    let src = "int main() {
        long n; n = in_len();
        long s; s = 0;
        for (int i = 0; i < n; i++) { s += in_long(i); }
        out_long(s);
        out_float(in_float(0) * 2.0);
        print_long(s);
        return (int)s; }";
    let config = VmConfig {
        inputs_int: vec![10, 20, 30],
        inputs_float: vec![1.25],
        ..Default::default()
    };
    let (ret, vm) = run_with(src, config);
    assert_eq!(ret, 60);
    assert_eq!(vm.outputs_int(), vec![60]);
    assert_eq!(vm.outputs_float(), vec![2.5]);
    assert_eq!(vm.console(), "60\n");
}

#[test]
fn input_out_of_range_traps() {
    let e = run_err("int main() { return (int)in_long(0); }");
    assert!(e.msg.contains("out of range"), "{e}");
}

// ---------------------------------------------------------------------------
// parallel execution
// ---------------------------------------------------------------------------

/// A DOALL loop writing disjoint array cells gives identical results on any
/// thread count.
#[test]
fn doall_disjoint_writes_match_serial() {
    let src = "int main() {
        int *a; a = malloc(1000 * sizeof(int));
        #pragma candidate fill
        for (int i = 0; i < 1000; i++) { a[i] = i * 3 + 1; }
        int s; s = 0;
        for (int i = 0; i < 1000; i++) { s += a[i]; }
        free(a);
        return s % 1000000; }";
    let serial = run(src);
    for n in [1, 2, 4, 8] {
        assert_eq!(run_parallel(src, n, ParMode::DoAll), serial, "n={n}");
    }
}

#[test]
fn doacross_ordered_updates_match_serial() {
    // Each iteration reads the previous cell: a genuine carried dependence,
    // safe under DOACROSS because of the full-body ordered section.
    let src = "int main() {
        int *a; a = malloc(501 * sizeof(int));
        a[0] = 1;
        #pragma candidate chain
        for (int i = 0; i < 500; i++) { a[i + 1] = (a[i] * 7 + 3) % 1000; }
        int r; r = a[500];
        free(a);
        return r; }";
    let serial = run(src);
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    opts.par.insert(
        "chain".into(),
        ParLoopSpec {
            mode: ParMode::DoAcross,
            sync_window: Some((0, 0)),
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    for n in [2, 4, 8] {
        let mut vm = Vm::new(
            compiled.clone(),
            VmConfig {
                nthreads: n,
                ..Default::default()
            },
        )
        .unwrap();
        let report = vm.run().unwrap();
        assert_eq!(report.return_value, Some(Value::I(serial)), "n={n}");
        assert!(report.counters.sync_ops > 0);
    }
}

#[test]
fn parallel_loop_with_function_calls_uses_private_stacks() {
    let src = "int square(int x) { int t; t = x * x; return t; }
        int main() {
        int *a; a = malloc(400 * sizeof(int));
        #pragma candidate hot
        for (int i = 0; i < 400; i++) { a[i] = square(i); }
        int s; s = 0;
        for (int i = 0; i < 400; i++) { s += a[i]; }
        free(a);
        return s % 100000; }";
    let serial = run(src);
    assert_eq!(run_parallel(src, 4, ParMode::DoAll), serial);
}

#[test]
fn induction_variable_value_after_parallel_loop() {
    let src = "int main() {
        int *a; a = malloc(10 * sizeof(int));
        int i;
        #pragma candidate hot
        for (i = 0; i < 10; i++) { a[i] = 1; }
        free(a);
        return i; }";
    assert_eq!(run(src), 10);
    assert_eq!(run_parallel(src, 4, ParMode::DoAll), 10);
}

#[test]
fn empty_parallel_range_is_fine() {
    let src = "int main() {
        int n; n = 0;
        #pragma candidate hot
        for (int i = 0; i < n; i++) { n = n; }
        return 7; }";
    assert_eq!(run_parallel(src, 4, ParMode::DoAll), 7);
}

#[test]
fn worker_trap_propagates() {
    let src = "int main() {
        int *a; a = malloc(100 * sizeof(int));
        int z; z = 0;
        #pragma candidate hot
        for (int i = 0; i < 100; i++) { a[i] = i / z; }
        free(a);
        return 0; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    opts.par.insert(
        "hot".into(),
        ParLoopSpec {
            mode: ParMode::DoAll,
            sync_window: None,
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let e = vm.run().expect_err("expected trap");
    assert!(e.msg.contains("division"), "{e}");
}

#[test]
fn doacross_worker_trap_does_not_deadlock() {
    let src = "int g; int main() {
        int z; z = 0;
        #pragma candidate hot
        for (int i = 0; i < 50; i++) { g = g + 10 / (z + (i < 25)); }
        return g; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    opts.par.insert(
        "hot".into(),
        ParLoopSpec {
            mode: ParMode::DoAcross,
            sync_window: Some((0, 0)),
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let e = vm.run().expect_err("expected trap");
    assert!(e.msg.contains("division"), "{e}");
}

#[test]
fn counters_report_work() {
    let (_, vm) = run_with(
        "int main() { int s; s = 0; for (int i = 0; i < 100; i++) { s += i; } return s; }",
        VmConfig::default(),
    );
    let _ = vm; // run_with already checked the value; counters are in the report.
    let ast = dse_lang::compile_to_ast("int main() { return 0; }").unwrap();
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
    let mut vm = Vm::new(compiled, VmConfig::default()).unwrap();
    let report = vm.run().unwrap();
    // `int main() { return 0; }` executes PushI + Ret.
    assert_eq!(report.counters.work, 2);
}

#[test]
fn instruction_budget_traps() {
    let ast = dse_lang::compile_to_ast("int main() { int i; i = 0; while (1) { i++; } return i; }")
        .unwrap();
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            max_instructions: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    let e = vm.run().expect_err("expected trap");
    assert!(e.msg.contains("budget"), "{e}");
}

// ---------------------------------------------------------------------------
// runtime privatization baseline plumbing
// ---------------------------------------------------------------------------

#[test]
fn localize_translates_heap_accesses() {
    // Wrap every access to the scratch buffer in Localize and check the
    // program still computes the right value on one thread (the copy is
    // committed back at loop end).
    let src = "int main() {
        int *buf; buf = malloc(10 * sizeof(int));
        int s; s = 0;
        #pragma candidate hot
        for (int i = 0; i < 10; i++) {
            buf[0] = i;
            s = s + buf[0];
        }
        free(buf);
        return s; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let compiled_plain = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
    // Find the buf[0] access sites.
    let mut localize = std::collections::HashSet::new();
    for (_, info) in compiled_plain.sites.iter() {
        localize.insert((info.eid, info.kind));
    }
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        localize,
        ..Default::default()
    };
    opts.par.insert(
        "hot".into(),
        ParLoopSpec {
            mode: ParMode::DoAcross,
            sync_window: Some((0, 1)),
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    let mut vm = Vm::new(compiled, VmConfig::default()).unwrap();
    let report = vm.run().unwrap();
    assert_eq!(report.return_value, Some(Value::I(45)));
    assert!(report.counters.localize_calls > 0);
    assert!(report.counters.localize_copied_bytes > 0);
}

// ---------------------------------------------------------------------------
// fused redirection instructions (strength-reduced addressing)
// ---------------------------------------------------------------------------

/// `v[__tid()]` on a local array lowers to one FrameAddrTid and reads the
/// right per-thread slot.
#[test]
fn fused_frame_addr_tid_semantics() {
    let src = "int main() {
        int slots[4];
        for (int t = 0; t < 4; t++) { slots[t] = 0; }
        #pragma candidate hot
        for (int i = 0; i < 40; i++) {
            slots[__tid()] += 1;
        }
        int s; s = 0;
        for (int t = 0; t < 4; t++) { s += slots[t]; }
        return s; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    opts.par.insert(
        "hot".into(),
        ParLoopSpec {
            mode: ParMode::DoAll,
            sync_window: None,
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    assert!(
        compiled
            .code
            .iter()
            .any(|i| matches!(i, dse_ir::Instr::FrameAddrTid { .. })),
        "peephole should fire for slots[__tid()]"
    );
    for n in [1u32, 2, 4] {
        let mut vm = Vm::new(
            compiled.clone(),
            VmConfig {
                nthreads: n,
                ..Default::default()
            },
        )
        .unwrap();
        let report = vm.run().unwrap();
        assert_eq!(report.return_value, Some(Value::I(40)), "n={n}");
    }
}

/// The `__tid() * S / Z` constant-span offset folds to TidScaled and the
/// naive-redirection flag restores the long form; both compute the same.
///
/// The whole body runs as the ordered section (sync window spans every
/// statement): this program is *unexpanded*, so its body locals (`base`,
/// `a`, the inner `k`s) live in the master's shared frame and would race
/// under overlapped iterations. Full ordering makes both runs
/// deterministic while preserving what the test measures — the peephole's
/// output equivalence and instruction-count advantage.
#[test]
fn tid_scaled_peephole_matches_naive() {
    let src = "int main() {
        int *buf; buf = malloc(3 * 16 * sizeof(int));
        long s; s = 0;
        #pragma candidate hot
        for (int i = 0; i < 30; i++) {
            int *base; base = buf + __tid() * 64 / 4;
            for (int k = 0; k < 16; k++) { base[k] = i + k; }
            int a; a = 0;
            for (int k = 0; k < 16; k++) { a += base[k]; }
            s += a;
        }
        out_long(s);
        free(buf);
        return 0; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut results = Vec::new();
    for naive in [false, true] {
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            naive_redirection: naive,
            ..Default::default()
        };
        opts.par.insert(
            "hot".into(),
            ParLoopSpec {
                mode: ParMode::DoAcross,
                sync_window: Some((0, 6)),
            },
        );
        let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
        let mut vm = Vm::new(
            compiled,
            VmConfig {
                nthreads: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let report = vm.run().unwrap();
        results.push((vm.outputs_int(), report.counters.work));
    }
    assert_eq!(results[0].0, results[1].0, "same outputs");
    assert!(
        results[0].1 < results[1].1,
        "fused lowering must execute fewer instructions: {} vs {}",
        results[0].1,
        results[1].1
    );
}

// ---------------------------------------------------------------------------
// expansion-support builtins
// ---------------------------------------------------------------------------

/// `__realloc_expanded` moves each thread's copy to its new stride.
#[test]
fn realloc_expanded_moves_every_copy() {
    // Lay out 3 copies of 2 ints each by hand through __tid()-free code:
    // write distinct values at copy strides, grow, and verify all copies.
    let src = "int main() {
        int *p; p = malloc(3 * 2 * sizeof(int));
        for (int t = 0; t < 3; t++) {
            p[t * 2] = 100 + t;
            p[t * 2 + 1] = 200 + t;
        }
        p = (int*)__realloc_expanded(p, 4 * (long)sizeof(int), 2 * (long)sizeof(int));
        int ok; ok = 1;
        for (int t = 0; t < 3; t++) {
            if (p[t * 4] != 100 + t) { ok = 0; }
            if (p[t * 4 + 1] != 200 + t) { ok = 0; }
        }
        free(p);
        return ok; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 3,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(vm.run().unwrap().return_value, Some(Value::I(1)));
}

/// Regression: a replica whose `src + keep` ran past the old allocation
/// was skipped entirely, losing the last thread's in-bounds bytes whenever
/// `old_span * nthreads` exceeded the recorded size. The in-bounds prefix
/// must be copied.
#[test]
fn realloc_expanded_copies_partial_last_replica() {
    // 44-byte allocation, span 12, 4 threads: replica 3 starts at offset 36
    // with only 8 in-bounds bytes (ints p[9], p[10]). They must survive.
    let src = "int main() {
        int *p; p = malloc(44);
        p[0] = 5; p[9] = 77; p[10] = 88;
        int *r; r = (int*)__realloc_expanded(p, 24, 12);
        return r[0] * 1000000 + r[18] * 1000 + r[19]; }";
    let (v, _) = run_with(
        src,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    );
    assert_eq!(v, 5_077_088, "replica 0 and replica 3 prefixes preserved");
}

/// Regression: a replica starting entirely outside the old allocation
/// means the span metadata disagrees with the allocation; the old code
/// silently skipped it, now it traps.
#[test]
fn realloc_expanded_inconsistent_span_traps() {
    // 20-byte allocation cannot hold 4 replicas of span 12: replica 2
    // would start at offset 24, past the end.
    let src = "int main() {
        int *p; p = malloc(20);
        int *r; r = (int*)__realloc_expanded(p, 24, 12);
        return 0; }";
    let e = run_err_with(
        src,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    );
    assert!(e.msg.contains("inconsistent span"), "{}", e.msg);
}

/// `__memcpy` copies bytes between heap blocks.
#[test]
fn memcpy_builtin() {
    assert_eq!(
        run("int main() {
            int *a; a = malloc(4 * sizeof(int));
            int *b; b = malloc(4 * sizeof(int));
            for (int i = 0; i < 4; i++) { a[i] = (i + 1) * 11; }
            __memcpy(b, a, 4 * (long)sizeof(int));
            int s; s = 0;
            for (int i = 0; i < 4; i++) { s += b[i]; }
            free(a); free(b);
            return s; }"),
        110
    );
}

/// `__localize` outside any parallel loop still translates heap addresses
/// into a private copy and passes static addresses through.
#[test]
fn localize_builtin_direct() {
    assert_eq!(
        run("int g; int main() {
            g = 7;
            int *p; p = malloc(2 * sizeof(int));
            p[0] = 41;
            int *lp; lp = (int*)__localize(p);
            lp[0] = lp[0] + 1;
            int *lg; lg = (int*)__localize(&g);
            int r; r = lp[0] * 100 + *lg;
            free(p);
            return r; }"),
        4207
    );
}

/// Iteration-cost recording captures pre/window/post segments.
#[test]
fn iteration_cost_recording_segments() {
    let src = "int g; int main() {
        int *a; a = malloc(10 * sizeof(int));
        #pragma candidate hot
        for (int i = 0; i < 10; i++) {
            int t; t = i * 3;
            g = g + t;
            a[i] = g;
        }
        int r; r = a[9];
        free(a);
        return r; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    opts.par.insert(
        "hot".into(),
        ParLoopSpec {
            mode: ParMode::DoAcross,
            // Statement indices count the bare `int t;` declaration:
            // 0 decl, 1 `t = i * 3`, 2 `g = g + t`, 3 `a[i] = g`.
            sync_window: Some((2, 2)),
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            record_iteration_costs: true,
            ..Default::default()
        },
    )
    .unwrap();
    vm.run().unwrap();
    let traces = vm.iteration_costs();
    let entries = &traces[&0];
    assert_eq!(entries.len(), 1, "one dynamic entry");
    assert_eq!(entries[0].len(), 10, "ten iterations");
    for c in &entries[0] {
        assert!(c.pre > 0, "work before the window");
        assert!(c.window > 0, "the ordered g update");
        assert!(c.post > 0, "the a[i] store after the window");
    }
}

/// DOACROSS ordered sections execute strictly in iteration order under
/// real threads: an ordered append must produce the identity sequence
/// even when iterations do wildly different amounts of work.
#[test]
fn doacross_ordered_append_is_in_order() {
    let src = "int pos;
        int *seq;
        int main() {
          seq = malloc(300 * sizeof(int));
          pos = 0;
          #pragma candidate hot
          for (int i = 0; i < 300; i++) {
            int spin; spin = (i * 37) % 90;
            int t; t = 0;
            for (int k = 0; k < spin; k++) { t += k; }
            seq[pos] = i + (t & 0);
            pos++;
          }
          int ok; ok = 1;
          for (int i = 0; i < 300; i++) { if (seq[i] != i) { ok = 0; } }
          free(seq);
          return ok; }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    opts.par.insert(
        "hot".into(),
        // The window covers the two append statements only: the spin work
        // overlaps across threads, the appends are ordered. Statement
        // indices count the bare declarations: 0 `int spin;`, 1 the spin
        // assignment, 2 `int t;`, 3 `t = 0`, 4 the inner loop, 5 and 6 the
        // appends. (This window was previously (3, 4), which left the
        // appends *outside* the ordered section — a race that surfaced
        // rarely as an out-of-order sequence under scheduler pressure.)
        ParLoopSpec {
            mode: ParMode::DoAcross,
            sync_window: Some((5, 6)),
        },
    );
    let compiled = dse_ir::lower_program(&ast, &opts).unwrap();
    for n in [2u32, 4, 8] {
        let mut vm = Vm::new(
            compiled.clone(),
            VmConfig {
                nthreads: n,
                ..Default::default()
            },
        )
        .unwrap();
        let report = vm.run().unwrap();
        assert_eq!(report.return_value, Some(Value::I(1)), "n={n}");
        assert!(report.counters.sync_ops > 0);
    }
}

/// The reserved builtins are callable from user code; `__tid()` is 0
/// outside parallel regions and `__nthreads()` reports the configuration.
#[test]
fn tid_and_nthreads_outside_parallel() {
    let src = "int main() { return (int)(__tid() * 100 + __nthreads()); }";
    let ast = dse_lang::compile_to_ast(src).unwrap();
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: 6,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(vm.run().unwrap().return_value, Some(Value::I(6)));
}
