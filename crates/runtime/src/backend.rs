//! Execution backends: how a [`Vm`] turns a compiled program into effects.
//!
//! The stack interpreter in [`crate::vm`] is the *reference* backend — it
//! executes the stack bytecode the lowering emits, and every observable
//! behaviour (outputs, traps, Figure-12 counters, site attribution) is
//! defined by it. The register backend executes the same program through
//! the register translation in [`dse_ir::regcode`], with threaded dispatch
//! over a flat per-thread register file; it must be observationally
//! equivalent (the differential suite in `crates/workloads` enforces
//! this), differing only in raw loop throughput.
//!
//! Both the master (`Vm::run`) and every pool worker dispatch through
//! [`Vm::exec`], which forwards to the configured backend — so one flag
//! switches the encoding for serial code, inlined loops, and all parallel
//! schedules at once.

use crate::observer::Observer;
use crate::vm::{ThreadCtx, Value, Vm, VmError};
use dse_ir::RegProgram;
use std::sync::Arc;

/// Which execution backend a [`crate::VmConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The reference stack interpreter.
    #[default]
    Stack,
    /// The register interpreter with threaded dispatch.
    Reg,
}

impl BackendKind {
    /// Parses a backend name as accepted by `--exec-backend`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "stack" => Some(BackendKind::Stack),
            "reg" | "register" => Some(BackendKind::Reg),
            _ => None,
        }
    }

    /// The default backend: `DSE_EXEC_BACKEND` if set to a valid name
    /// (`stack`/`reg`), else [`BackendKind::Stack`]. Lets CI run the whole
    /// suite under the register backend without threading a flag through
    /// every test.
    pub fn from_env() -> BackendKind {
        match std::env::var("DSE_EXEC_BACKEND") {
            Ok(s) => BackendKind::parse(&s).unwrap_or(BackendKind::Stack),
            Err(_) => BackendKind::Stack,
        }
    }

    /// The `--exec-backend` spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Stack => "stack",
            BackendKind::Reg => "reg",
        }
    }
}

/// An execution engine for one [`Vm`]. `entry` is always a *stack*
/// bytecode pc (function entry or outlined region entry) — backends with
/// their own encoding map it through their entry table, so the executor
/// and scheduler never need to know which encoding runs.
pub(crate) trait ExecBackend: Send + Sync {
    /// The `--exec-backend` spelling of this backend.
    #[allow(dead_code)]
    fn name(&self) -> &'static str;

    /// Executes from stack pc `entry` until the current sentinel frame
    /// returns; the semantics contract is [`Vm::exec_stack`]'s.
    fn exec(
        &self,
        vm: &Vm,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, VmError>;
}

/// The reference backend: the stack interpreter in [`crate::vm`].
pub(crate) struct StackBackend;

impl ExecBackend for StackBackend {
    fn name(&self) -> &'static str {
        "stack"
    }

    fn exec(
        &self,
        vm: &Vm,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, VmError> {
        vm.exec_stack(ctx, entry, obs)
    }
}

/// The register backend: threaded dispatch over the translated
/// [`RegProgram`] (see [`crate::regvm`]).
pub(crate) struct RegBackend {
    prog: Arc<RegProgram>,
}

impl RegBackend {
    pub(crate) fn new(prog: Arc<RegProgram>) -> RegBackend {
        RegBackend { prog }
    }
}

impl ExecBackend for RegBackend {
    fn name(&self) -> &'static str {
        "reg"
    }

    fn exec(
        &self,
        vm: &Vm,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, VmError> {
        let Some(&rentry) = self.prog.entry_map.get(&entry) else {
            return Err(VmError::new(
                entry as usize,
                format!("no register translation for entry pc {entry}"),
            ));
        };
        vm.exec_reg(&self.prog, ctx, rentry, obs)
    }
}
