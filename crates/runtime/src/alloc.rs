//! The scalable heap allocator: size-class segregated free lists with
//! sharded front-end caches and a sharded allocation registry.
//!
//! Every expanded access the transformation emits (Table 2 redirection and
//! the Section 3.3 heap-prefix fast path) funnels through this subsystem,
//! so its hot paths must not serialize workers:
//!
//! * **Allocation** rounds the request up to one of [`NCLASSES`] size
//!   classes and pops a block from a *front-end magazine* — a small
//!   per-shard stack keyed by the calling thread. The common case touches
//!   one uncontended shard lock and is O(1). Magazine misses refill a
//!   batch of blocks from the shared backend under a single lock
//!   acquisition, amortizing the lock over [`REFILL_BATCH`] allocations.
//! * **The registry** (live allocations, for `containing`/`at_base`
//!   interior-pointer lookup) is sharded by address region with a
//!   read-write lock per shard, so concurrent lookups from redirected
//!   accesses proceed in parallel. A bitmap of occupied shards lets
//!   lookups skip empty regions without locking them.
//! * **Free** pushes the block back onto the caller's magazine; overflow
//!   is flushed to the backend in batches. Address-space *coalescing*
//!   happens lazily: when an allocation cannot be satisfied, the heap
//!   *scavenges* — drains every magazine and bin into the coalesced free
//!   map — and retries, so freeing everything always permits a
//!   full-arena reallocation (the invariant the property tests assert).
//!
//! Contention telemetry (magazine hits/misses, backend lock acquisitions,
//! scavenges) is exposed via [`Heap::contention`] and flows into
//! `RunReport`/`dse-telemetry` metrics.

use crate::tracebuf::{EventKind, TraceEvent, HEAP_TID};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Alignment of every heap allocation.
pub const HEAP_ALIGN: u64 = 16;

/// One live heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base address.
    pub base: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Size of the block actually carved for the request (the requested
    /// size rounded up to the allocator's size class). `[base, base+block)`
    /// is owned by this allocation: interior-pointer lookup, freeing and
    /// live-byte accounting all use this single bound.
    pub block: u64,
    /// Monotonic id, unique per allocation over the program's lifetime.
    pub id: u64,
}

impl Allocation {
    /// One past the last address owned by this allocation.
    pub fn end(&self) -> u64 {
        self.base + self.block
    }
}

/// Number of segregated size classes.
pub const NCLASSES: usize = 28;

/// Block size of each class: 16-byte steps up to 128, then four classes
/// per power of two (worst-case internal fragmentation 1/8).
pub const CLASS_SIZES: [u64; NCLASSES] = [
    16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
    1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096,
];

/// Largest size served from a class; bigger requests go to the backend
/// first-fit directly.
const MAX_CLASS: u64 = 4096;

/// Blocks fetched from the backend per magazine refill.
const REFILL_BATCH: usize = 8;

/// Magazine capacity per class; overflow flushes half back to the backend.
const MAG_CAP: usize = 64;

/// Front-end cache shards (threads are assigned round-robin).
const NSHARDS: usize = 16;

/// Registry shards (address-region partitioned; must stay <= 64 so the
/// occupancy bitmap fits one word).
const NREG: usize = 64;

/// The smallest class whose block size is >= `want`, or `None` for large
/// requests. `want` must already be `HEAP_ALIGN`-rounded.
fn class_of(want: u64) -> Option<usize> {
    if want > MAX_CLASS {
        return None;
    }
    Some(CLASS_SIZES.partition_point(|&c| c < want))
}

thread_local! {
    /// This OS thread's front-shard assignment (`usize::MAX` = unassigned).
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Pins the calling OS thread's front-end cache shard. The executor pool
/// pins each persistent worker to its pool worker id (and the master to 0)
/// so magazine caches stay thread-affine across every loop of a run —
/// blocks a worker freed in loop `k` are the blocks it reallocates in loop
/// `k+1`, with no cross-shard migration.
pub(crate) fn pin_front_shard(shard: usize) {
    SHARD.with(|s| s.set(shard % NSHARDS));
}

/// This thread's front-shard: the pinned one, or a round-robin assignment
/// fixed on first use (threads outside the executor pool).
fn front_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed) % NSHARDS;
        s.set(v);
        v
    })
}

/// Allocator contention counters, exposed through `RunReport` and the
/// telemetry `RunMetrics` document (`dsec --metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapContention {
    /// Allocations served from a front-end magazine (O(1) fast path).
    pub cache_hits: u64,
    /// Allocations that missed the magazine and refilled from the backend.
    pub cache_misses: u64,
    /// Acquisitions of the shared backend lock (refills, large requests,
    /// magazine flushes, scavenges).
    pub backend_locks: u64,
    /// Full scavenges (drain magazines + bins, coalesce) before retrying a
    /// failed allocation.
    pub scavenges: u64,
}

/// The shared slow-path state: coalesced free address space plus
/// uncoalesced per-class bins of flushed magazine blocks.
#[derive(Debug)]
struct Backend {
    /// Free space by base address -> size, fully coalesced.
    free: BTreeMap<u64, u64>,
    /// Per-class stacks of blocks returned by magazine overflow; reused by
    /// refills without touching the free map.
    bins: Vec<Vec<u64>>,
}

impl Backend {
    /// Inserts `[base, base+size)` into the free map, coalescing with both
    /// neighbors.
    fn insert_free(&mut self, base: u64, size: u64) {
        let mut nbase = base;
        let mut nsize = size;
        if let Some((&pb, &ps)) = self.free.range(..base).next_back() {
            if pb + ps == nbase {
                self.free.remove(&pb);
                nbase = pb;
                nsize += ps;
            }
        }
        if let Some((&sb, &ss)) = self.free.range(nbase + nsize..).next() {
            if nbase + nsize == sb {
                self.free.remove(&sb);
                nsize += ss;
            }
        }
        self.free.insert(nbase, nsize);
    }

    /// First-fit carve of exactly `want` bytes from the free map.
    fn carve_first_fit(&mut self, want: u64) -> Option<u64> {
        let (&fbase, &fsize) = self.free.iter().find(|(_, &s)| s >= want)?;
        self.free.remove(&fbase);
        if fsize > want {
            self.free.insert(fbase + want, fsize - want);
        }
        Some(fbase)
    }

    /// Carves up to `max` contiguous blocks of `class_size` from the first
    /// fitting free range, pushing them onto `out` with the lowest address
    /// last (so `pop` hands out ascending addresses).
    fn carve_batch(&mut self, class_size: u64, max: usize, out: &mut Vec<u64>) {
        let Some((&fbase, &fsize)) = self.free.iter().find(|(_, &s)| s >= class_size) else {
            return;
        };
        let n = ((fsize / class_size) as usize).min(max) as u64;
        self.free.remove(&fbase);
        if fsize > n * class_size {
            self.free
                .insert(fbase + n * class_size, fsize - n * class_size);
        }
        for i in (0..n).rev() {
            out.push(fbase + i * class_size);
        }
    }
}

/// A front-end cache shard: one magazine (stack of free blocks) per class.
/// Cache-line aligned so neighboring shards do not false-share.
#[repr(align(64))]
#[derive(Debug)]
struct FrontShard {
    mags: Mutex<Vec<Vec<u64>>>,
}

/// A registry shard: the live allocations whose base falls in this shard's
/// address region.
#[repr(align(64))]
#[derive(Debug)]
struct RegShard {
    live: RwLock<BTreeMap<u64, Allocation>>,
}

/// Thread-scalable heap allocator with an allocation registry supporting
/// interior-pointer lookup (the paper's "heap prefix" fast path).
#[derive(Debug)]
pub struct Heap {
    base: u64,
    limit: u64,
    /// Address-region width of one registry shard.
    region: u64,
    backend: Mutex<Backend>,
    fronts: Vec<FrontShard>,
    regs: Vec<RegShard>,
    /// Bit `s` set while registry shard `s` is (probably) non-empty;
    /// maintained under the shard's write lock, read without it.
    occupied: AtomicU64,
    next_id: AtomicU64,
    live_bytes: AtomicU64,
    peak_live: AtomicU64,
    total_allocs: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    backend_locks: AtomicU64,
    scavenges: AtomicU64,
    /// Whether slow-path tracing is armed (checked with one relaxed load
    /// before touching `trace`, so disabled runs never take the lock).
    trace_on: AtomicBool,
    /// Slow-path trace state: refill/scavenge events buffered until the VM
    /// drains them at run end. Only touched on backend paths that already
    /// serialize on a lock.
    trace: Mutex<Option<HeapTraceState>>,
}

/// Buffered allocator slow-path events (see [`Heap::enable_trace`]).
#[derive(Debug)]
struct HeapTraceState {
    epoch: Instant,
    events: Vec<TraceEvent>,
}

impl Heap {
    /// Creates a heap managing `[base, limit)`.
    pub fn new(base: u64, limit: u64) -> Self {
        let base = dse_lang::types::round_up(base, HEAP_ALIGN);
        let mut free = BTreeMap::new();
        if limit > base {
            free.insert(base, limit - base);
        }
        let region = (limit.saturating_sub(base)).div_ceil(NREG as u64).max(1);
        Heap {
            base,
            limit,
            region,
            backend: Mutex::new(Backend {
                free,
                bins: (0..NCLASSES).map(|_| Vec::new()).collect(),
            }),
            fronts: (0..NSHARDS)
                .map(|_| FrontShard {
                    mags: Mutex::new((0..NCLASSES).map(|_| Vec::new()).collect()),
                })
                .collect(),
            regs: (0..NREG)
                .map(|_| RegShard {
                    live: RwLock::new(BTreeMap::new()),
                })
                .collect(),
            occupied: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            live_bytes: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
            total_allocs: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            backend_locks: AtomicU64::new(0),
            scavenges: AtomicU64::new(0),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
        }
    }

    /// Arms slow-path event tracing on the timeline starting at `epoch`
    /// (the VM's trace-sink epoch, so allocator events line up with the
    /// rest of the trace).
    pub fn enable_trace(&self, epoch: Instant) {
        *self.trace.lock().unwrap() = Some(HeapTraceState {
            epoch,
            events: Vec::new(),
        });
        self.trace_on.store(true, Ordering::Release);
    }

    /// Takes every buffered slow-path event (empty when tracing is off).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        match self.trace.lock().unwrap().as_mut() {
            Some(st) => std::mem::take(&mut st.events),
            None => Vec::new(),
        }
    }

    /// Start timestamp for a slow-path span, when tracing is armed.
    fn trace_start(&self) -> Option<Instant> {
        self.trace_on.load(Ordering::Acquire).then(Instant::now)
    }

    /// Buffers one slow-path event spanning `t0`..now.
    fn trace_event(&self, kind: EventKind, t0: Instant, a: u64, b: u64) {
        let mut g = self.trace.lock().unwrap();
        let Some(st) = g.as_mut() else { return };
        let ts_ns = t0.duration_since(st.epoch).as_nanos() as u64;
        let dur_ns = t0.elapsed().as_nanos() as u64;
        st.events.push(TraceEvent {
            ts_ns,
            dur_ns: if kind.is_span() { dur_ns } else { 0 },
            a,
            b,
            tid: HEAP_TID,
            kind,
        });
    }

    /// Start of the heap region (for address classification).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// End of the heap region.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Registry shard index of `addr` (which must be >= `self.base`).
    fn reg_index(&self, addr: u64) -> usize {
        (((addr - self.base) / self.region) as usize).min(NREG - 1)
    }

    /// Allocates `size` bytes (`size == 0` behaves like `size == 1`).
    /// Returns the allocation record, or `None` when out of memory.
    pub fn alloc(&self, size: u64) -> Option<Allocation> {
        let want = dse_lang::types::round_up(size.max(1), HEAP_ALIGN);
        let (base, block) = match class_of(want) {
            Some(c) => (self.alloc_class(c)?, CLASS_SIZES[c]),
            None => (self.alloc_large(want)?, want),
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let a = Allocation {
            base,
            size,
            block,
            id,
        };
        let s = self.reg_index(base);
        {
            let mut live = self.regs[s].live.write().unwrap();
            live.insert(base, a);
            self.occupied.fetch_or(1 << s, Ordering::SeqCst);
        }
        let live_now = self.live_bytes.fetch_add(block, Ordering::Relaxed) + block;
        self.peak_live.fetch_max(live_now, Ordering::Relaxed);
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
        Some(a)
    }

    /// Class-sized allocation: magazine pop, then batched backend refill,
    /// then scavenge-and-retry.
    fn alloc_class(&self, c: usize) -> Option<u64> {
        let f = front_shard();
        {
            let mut mags = self.fronts[f].mags.lock().unwrap();
            if let Some(b) = mags[c].pop() {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Some(b);
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let mut batch = Vec::with_capacity(REFILL_BATCH);
        self.refill(c, &mut batch);
        if batch.is_empty() {
            self.scavenge();
            self.refill(c, &mut batch);
        }
        let ret = batch.pop();
        if !batch.is_empty() {
            let mut mags = self.fronts[f].mags.lock().unwrap();
            mags[c].append(&mut batch);
        }
        ret
    }

    /// Pulls up to a batch of class-`c` blocks from the backend (bins
    /// first, then a contiguous carve) under one lock acquisition.
    fn refill(&self, c: usize, out: &mut Vec<u64>) {
        let t0 = self.trace_start();
        self.backend_locks.fetch_add(1, Ordering::Relaxed);
        {
            let mut bk = self.backend.lock().unwrap();
            while out.len() < REFILL_BATCH {
                match bk.bins[c].pop() {
                    Some(b) => out.push(b),
                    None => break,
                }
            }
            if out.is_empty() {
                bk.carve_batch(CLASS_SIZES[c], REFILL_BATCH, out);
            }
        }
        if let Some(t0) = t0 {
            self.trace_event(EventKind::Refill, t0, c as u64, out.len() as u64);
        }
    }

    /// Large allocation: straight first-fit on the backend, with one
    /// scavenge-and-retry before giving up.
    fn alloc_large(&self, want: u64) -> Option<u64> {
        self.backend_locks.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = self.backend.lock().unwrap().carve_first_fit(want) {
            return Some(b);
        }
        self.scavenge();
        self.backend_locks.fetch_add(1, Ordering::Relaxed);
        self.backend.lock().unwrap().carve_first_fit(want)
    }

    /// Drains every magazine and backend bin into the coalesced free map.
    /// Called before declaring out-of-memory so that freed-but-cached
    /// blocks can merge back into large contiguous ranges.
    fn scavenge(&self) {
        let t0 = self.trace_start();
        self.scavenges.fetch_add(1, Ordering::Relaxed);
        let mut drained: Vec<(u64, u64)> = Vec::new();
        for fs in &self.fronts {
            let mut mags = fs.mags.lock().unwrap();
            for (c, m) in mags.iter_mut().enumerate() {
                drained.extend(m.drain(..).map(|b| (b, CLASS_SIZES[c])));
            }
        }
        self.backend_locks.fetch_add(1, Ordering::Relaxed);
        let mut bk = self.backend.lock().unwrap();
        for (c, &class_size) in CLASS_SIZES.iter().enumerate() {
            let bin = std::mem::take(&mut bk.bins[c]);
            for b in bin {
                bk.insert_free(b, class_size);
            }
        }
        for (b, s) in drained {
            bk.insert_free(b, s);
        }
        drop(bk);
        if let Some(t0) = t0 {
            self.trace_event(EventKind::Scavenge, t0, 0, 0);
        }
    }

    /// Frees the allocation starting exactly at `base`. Returns the freed
    /// record, or `None` if `base` is not a live allocation base.
    pub fn free(&self, base: u64) -> Option<Allocation> {
        if base < self.base {
            return None;
        }
        let s = self.reg_index(base);
        let a = {
            let mut live = self.regs[s].live.write().unwrap();
            let a = live.remove(&base)?;
            if live.is_empty() {
                self.occupied.fetch_and(!(1u64 << s), Ordering::SeqCst);
            }
            a
        };
        self.live_bytes.fetch_sub(a.block, Ordering::Relaxed);
        match class_of(a.block) {
            Some(c) => self.free_class(base, c),
            None => {
                self.backend_locks.fetch_add(1, Ordering::Relaxed);
                self.backend.lock().unwrap().insert_free(base, a.block);
            }
        }
        Some(a)
    }

    /// Returns a class block to the caller's magazine, flushing half to the
    /// backend bins on overflow.
    fn free_class(&self, base: u64, c: usize) {
        let f = front_shard();
        let mut overflow = Vec::new();
        {
            let mut mags = self.fronts[f].mags.lock().unwrap();
            mags[c].push(base);
            if mags[c].len() > MAG_CAP {
                overflow = mags[c].split_off(MAG_CAP / 2);
            }
        }
        if !overflow.is_empty() {
            self.backend_locks.fetch_add(1, Ordering::Relaxed);
            self.backend.lock().unwrap().bins[c].append(&mut overflow);
        }
    }

    /// Finds the live allocation containing `addr` (interior pointers ok,
    /// anywhere inside the allocation's `block`).
    ///
    /// Walks registry shards from `addr`'s region downward; the first shard
    /// holding a base `<= addr` holds the unique candidate (allocations
    /// never overlap). Empty shards are skipped via the occupancy bitmap
    /// without locking.
    pub fn containing(&self, addr: u64) -> Option<Allocation> {
        if addr < self.base {
            return None;
        }
        let start = self.reg_index(addr);
        let occ = self.occupied.load(Ordering::SeqCst);
        for s in (0..=start).rev() {
            if occ & (1 << s) == 0 {
                continue;
            }
            let live = self.regs[s].live.read().unwrap();
            if let Some((_, a)) = live.range(..=addr).next_back() {
                return (addr < a.end()).then_some(*a);
            }
            // Occupied but every base here is > addr: only possible in
            // `start` itself; earlier shards hold strictly smaller bases.
        }
        None
    }

    /// The live allocation starting exactly at `base`.
    pub fn at_base(&self, base: u64) -> Option<Allocation> {
        if base < self.base {
            return None;
        }
        let s = self.reg_index(base);
        self.regs[s].live.read().unwrap().get(&base).copied()
    }

    /// Current live heap bytes (block granularity).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of live heap bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live.load(Ordering::Relaxed)
    }

    /// Total number of allocations ever made.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs.load(Ordering::Relaxed)
    }

    /// Snapshot of the allocator contention counters.
    pub fn contention(&self) -> HeapContention {
        HeapContention {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            backend_locks: self.backend_locks.load(Ordering::Relaxed),
            scavenges: self.scavenges.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_is_sorted_and_aligned() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &CLASS_SIZES {
            assert_eq!(c % HEAP_ALIGN, 0);
        }
        assert_eq!(CLASS_SIZES[NCLASSES - 1], MAX_CLASS);
    }

    #[test]
    fn class_of_picks_smallest_fitting() {
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(128), Some(7));
        assert_eq!(class_of(144), Some(8)); // -> 160
        assert_eq!(class_of(4096), Some(NCLASSES - 1));
        assert_eq!(class_of(4112), None);
    }

    #[test]
    fn heap_alloc_free_reuse() {
        let h = Heap::new(0, 1024);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(100).unwrap();
        assert_ne!(a.base, b.base);
        assert_ne!(a.id, b.id);
        h.free(a.base).unwrap();
        let c = h.alloc(100).unwrap();
        assert_eq!(c.base, a.base, "magazine LIFO reuses the freed block");
    }

    #[test]
    fn heap_coalescing_allows_full_reuse() {
        let h = Heap::new(0, 256);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        h.free(b.base);
        h.free(a.base);
        h.free(c.base);
        // After scavenging + coalescing we can allocate the whole arena.
        assert!(h.alloc(240).is_some());
    }

    #[test]
    fn heap_oom_returns_none() {
        let h = Heap::new(0, 64);
        assert!(h.alloc(128).is_none());
    }

    #[test]
    fn large_allocations_bypass_classes() {
        let h = Heap::new(0, 64 << 10);
        let a = h.alloc(10_000).unwrap();
        assert_eq!(a.block, dse_lang::types::round_up(10_000, HEAP_ALIGN));
        assert!(h.free(a.base).is_some());
        assert!(h.alloc((64 << 10) - 16).is_some(), "space fully recycled");
    }

    #[test]
    fn containing_uses_block_bounds() {
        let h = Heap::new(0, 4096);
        let a = h.alloc(100).unwrap();
        assert_eq!(a.block, 112, "100 bytes rounds to the 112 class");
        assert_eq!(h.containing(a.base), Some(a));
        assert_eq!(h.containing(a.base + 99), Some(a));
        // Alignment padding belongs to the allocation (consistent with
        // free/live_bytes granularity)...
        assert_eq!(h.containing(a.base + a.block - 1), Some(a));
        // ...and one-past-the-block does not.
        assert_eq!(h.containing(a.base + a.block), None);
    }

    #[test]
    fn containing_walks_back_across_registry_shards() {
        // A large allocation spans many address regions; interior pointers
        // deep inside it must still resolve to the allocation, whose base
        // is registered shards away.
        let h = Heap::new(0, 1 << 20);
        let a = h.alloc((1 << 20) - 16).unwrap();
        assert_eq!(h.containing(a.base + a.block - 1), Some(a));
        assert_eq!(h.containing(a.base + a.block / 2), Some(a));
    }

    #[test]
    fn peak_tracking() {
        let h = Heap::new(0, 64 << 10);
        let a = h.alloc(1000).unwrap();
        let b = h.alloc(1000).unwrap();
        h.free(a.base);
        h.free(b.base);
        assert_eq!(h.live_bytes(), 0);
        assert!(h.peak_live_bytes() >= 2000);
        assert_eq!(h.total_allocs(), 2);
    }

    #[test]
    fn double_free_returns_none() {
        let h = Heap::new(0, 256);
        let a = h.alloc(10).unwrap();
        assert!(h.free(a.base).is_some());
        assert!(h.free(a.base).is_none());
    }

    #[test]
    fn zero_size_alloc_is_valid_and_unique() {
        let h = Heap::new(0, 256);
        let a = h.alloc(0).unwrap();
        let b = h.alloc(0).unwrap();
        assert_ne!(a.base, b.base);
        assert_eq!(a.block, HEAP_ALIGN);
    }

    #[test]
    fn contention_counters_move() {
        let h = Heap::new(0, 64 << 10);
        let a = h.alloc(32).unwrap();
        h.free(a.base);
        let _b = h.alloc(32).unwrap();
        let c = h.contention();
        assert!(c.cache_misses >= 1, "first alloc misses the magazine");
        assert!(c.cache_hits >= 1, "freed block is re-served from cache");
        assert!(c.backend_locks >= 1);
    }
}
