//! The parallel loop executor (the GOMP stand-in).
//!
//! `ParLoop` hands an iteration range to the loop runner:
//!
//! * **DOALL** uses static chunk scheduling — the range is split into N
//!   contiguous chunks, one per worker (paper Section 4.3).
//! * **DOACROSS** uses dynamic scheduling with chunk size 1: workers claim
//!   iterations in order from a shared counter; `Wait`/`Post` (or the
//!   automatic end-of-iteration post) enforce cross-iteration ordering.
//!
//! Thread 0 is the master: it participates as a worker with its own
//! existing context (so its frame pointer still addresses the enclosing
//! function's frame), while workers 1..N get fresh contexts that share the
//! master's `frame_base` but run on their own stack regions — the
//! "thread-private stacks" of real OpenMP threads.
//!
//! Nested `ParLoop`s (or runs configured with one thread) execute inline on
//! the current thread, preserving semantics and letting the overhead
//! experiments of Figure 9 run transformed code serially.

use crate::observer::{NullObserver, Observer};
use crate::vm::{Frame, LoopSync, ThreadCtx, Vm, VmError};
use dse_ir::loops::ParMode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::sync::Mutex;

/// Marker in abort-induced errors, so a worker's real trap is preferred
/// over the "I was told to stop" errors of its peers.
const ABORTED: &str = "aborted: another worker trapped";

fn record_error(slot: &Mutex<Option<VmError>>, e: VmError) {
    let mut g = slot.lock().unwrap();
    match &*g {
        None => *g = Some(e),
        Some(prev) if prev.msg.contains(ABORTED) && !e.msg.contains(ABORTED) => *g = Some(e),
        _ => {}
    }
}

impl Vm {
    /// Executes candidate loop `id` for iterations `lo..hi`.
    pub(crate) fn run_par_loop(
        &self,
        ctx: &mut ThreadCtx,
        id: u32,
        lo: i64,
        hi: i64,
    ) -> Result<(), VmError> {
        if lo >= hi {
            return Ok(());
        }
        let lc = &self.program.loops[id as usize];
        let mode = lc.mode.unwrap_or(ParMode::DoAll);
        let body = lc.body_entry;
        let sync = Arc::new(LoopSync::new(lo));

        if ctx.in_parallel || self.config.nthreads == 1 {
            // Inline serial execution on the current thread. The loop is
            // marked "in parallel" for its duration so nested candidate
            // loops neither re-enter the scheduler nor record their own
            // iteration costs (their cost is part of this loop's
            // iterations; double-recording would skew the simulator's
            // serial-remainder accounting).
            let record = self.config.record_iteration_costs && !ctx.in_parallel;
            if record {
                self.iter_trace
                    .lock()
                    .unwrap()
                    .entry(id)
                    .or_default()
                    .push(Vec::new());
            }
            let was_in_parallel = ctx.in_parallel;
            ctx.in_parallel = true;
            ctx.sync_stack.push((id, Arc::clone(&sync)));
            let mut obs = NullObserver;
            let mut result = Ok(());
            for i in lo..hi {
                ctx.iter_stack.push(i);
                ctx.posted = false;
                let start = ctx.counters;
                ctx.wait_mark = None;
                ctx.post_mark = None;
                let r = self.exec_region(ctx, body, &mut obs);
                ctx.iter_stack.pop();
                if record {
                    let end = ctx.counters.work;
                    let wait = ctx.wait_mark.unwrap_or(end).clamp(start.work, end);
                    let post = ctx.post_mark.unwrap_or(end).clamp(wait, end);
                    let cost = crate::vm::IterCost {
                        pre: wait - start.work,
                        window: post - wait,
                        post: end - post,
                        localize_calls: ctx.counters.localize_calls - start.localize_calls,
                        localize_bytes: ctx.counters.localize_copied_bytes
                            - start.localize_copied_bytes,
                        private_direct: ctx.counters.private_direct - start.private_direct,
                    };
                    let mut tr = self.iter_trace.lock().unwrap();
                    tr.get_mut(&id)
                        .and_then(|v| v.last_mut())
                        .expect("entry pushed above")
                        .push(cost);
                }
                if let Err(e) = r {
                    result = Err(e);
                    break;
                }
                self.post_iteration(ctx, &sync, i);
            }
            ctx.sync_stack.pop();
            ctx.in_parallel = was_in_parallel;
            self.commit_private_copies(ctx);
            return result;
        }

        let frame_base = ctx.frame_base;
        let err_slot: Mutex<Option<VmError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for t in 1..self.config.nthreads {
                let sync = Arc::clone(&sync);
                let err_slot = &err_slot;
                scope.spawn(move || {
                    let mut wctx =
                        ThreadCtx::new(t, self.stack_base_of(t), self.config.stack_bytes);
                    wctx.frame_base = frame_base;
                    wctx.in_parallel = true;
                    wctx.sync_stack.push((id, Arc::clone(&sync)));
                    let r = self.worker_loop(&mut wctx, mode, body, lo, hi, &sync);
                    wctx.sync_stack.pop();
                    self.commit_private_copies(&mut wctx);
                    self.agg.lock().unwrap().merge(&wctx.counters);
                    self.per_thread.lock().unwrap()[t as usize].merge(&wctx.counters);
                    if let Err(e) = r {
                        record_error(err_slot, e);
                    }
                });
            }
            // The master participates as worker 0.
            ctx.in_parallel = true;
            ctx.sync_stack.push((id, Arc::clone(&sync)));
            let r = self.worker_loop(ctx, mode, body, lo, hi, &sync);
            ctx.sync_stack.pop();
            ctx.in_parallel = false;
            self.commit_private_copies(ctx);
            if let Err(e) = r {
                record_error(&err_slot, e);
            }
        });
        match err_slot.into_inner().unwrap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// One worker's share of the loop. Sets the abort flag before returning
    /// an error so peers spinning in `Wait` escape.
    fn worker_loop(
        &self,
        ctx: &mut ThreadCtx,
        mode: ParMode,
        body: u32,
        lo: i64,
        hi: i64,
        sync: &LoopSync,
    ) -> Result<(), VmError> {
        let mut obs = NullObserver;
        let res = match mode {
            ParMode::DoAll => {
                let n = self.config.nthreads as i64;
                let total = hi - lo;
                let chunk = (total + n - 1) / n;
                let start = lo + ctx.tid as i64 * chunk;
                let end = (start + chunk).min(hi);
                let mut r = Ok(());
                for i in start..end {
                    if sync.abort.load(Ordering::Relaxed) {
                        r = Err(VmError::new(u32::MAX as usize, ABORTED));
                        break;
                    }
                    ctx.iter_stack.push(i);
                    let step = self.exec_region(ctx, body, &mut obs);
                    ctx.iter_stack.pop();
                    if let Err(e) = step {
                        r = Err(e);
                        break;
                    }
                }
                r
            }
            ParMode::DoAcross => {
                let mut r = Ok(());
                loop {
                    let i = sync.next.fetch_add(1, Ordering::Relaxed);
                    if i >= hi {
                        break;
                    }
                    if sync.abort.load(Ordering::Relaxed) {
                        r = Err(VmError::new(u32::MAX as usize, ABORTED));
                        break;
                    }
                    ctx.iter_stack.push(i);
                    ctx.posted = false;
                    let step = self.exec_region(ctx, body, &mut obs);
                    if step.is_ok() {
                        self.post_iteration(ctx, sync, i);
                    }
                    ctx.iter_stack.pop();
                    if let Err(e) = step {
                        r = Err(e);
                        break;
                    }
                }
                r
            }
        };
        if res.is_err() {
            sync.abort.store(true, Ordering::Relaxed);
        }
        res
    }

    /// Runs the outlined body region at `entry` to its `Ret`.
    pub(crate) fn exec_region(
        &self,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<(), VmError> {
        ctx.frames.push(Frame {
            ret_pc: None,
            saved_base: ctx.frame_base,
            saved_sp: ctx.sp,
        });
        let v = self.exec(ctx, entry, obs)?;
        debug_assert!(v.is_none(), "loop body regions return no value");
        Ok(())
    }
}
