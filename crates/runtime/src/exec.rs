//! The parallel loop executor (the GOMP stand-in).
//!
//! `ParLoop` hands an iteration range to the loop runner:
//!
//! * **DOALL** uses chunked dynamic scheduling with work stealing by
//!   default: the range is split into one contiguous share per worker,
//!   owners claim chunks from the front, and idle workers steal the back
//!   half of a victim's remaining share (see [`crate::pool`]). The seed's
//!   one-static-chunk-per-worker split is kept as
//!   [`crate::pool::DoallSchedule::Static`] for the imbalance baseline.
//! * **DOACROSS** uses dynamic scheduling with chunk size 1: workers claim
//!   iterations in order from a shared counter; `Wait`/`Post` (or the
//!   automatic end-of-iteration post) enforce cross-iteration ordering.
//!
//! Worker threads come from the persistent pool `Vm::run` keeps parked
//! between loops ([`crate::pool::ThreadMode::Pool`], the default) or are
//! spawned fresh per loop (`SpawnPerLoop`, the seed behavior retained as
//! the dispatch-latency baseline).
//!
//! Thread 0 is the master: it participates as a worker with its own
//! existing context (so its frame pointer still addresses the enclosing
//! function's frame), while workers 1..N run on their own stack regions
//! that share the master's `frame_base` — the "thread-private stacks" of
//! real OpenMP threads.
//!
//! Nested `ParLoop`s (or runs configured with one thread) execute inline on
//! the current thread, preserving semantics and letting the overhead
//! experiments of Figure 9 run transformed code serially.

use crate::observer::{NullObserver, Observer};
use crate::pool::{DoallSchedule, LoopDispatch, StealQueue, ThreadMode};
use crate::tracebuf::{EventKind, TraceEvent};
use crate::vm::{lock_clean, Frame, LoopSync, ThreadCtx, Vm, VmError};
use dse_ir::loops::ParMode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// Marker in abort-induced errors, so a worker's real trap is preferred
/// over the "I was told to stop" errors of its peers.
const ABORTED: &str = "aborted: another worker trapped";

/// Chunks each worker's initial DOALL share is claimed in: enough splits
/// that stealing can rebalance, coarse enough that the per-chunk lock is
/// amortized over real work.
const CHUNKS_PER_WORKER: i64 = 8;

/// Owner-claim granularity for a loop of `total` iterations on `n`
/// threads.
fn chunk_size(total: i64, n: u32) -> i64 {
    (total / (n as i64 * CHUNKS_PER_WORKER)).max(1)
}

fn record_error(slot: &Mutex<Option<VmError>>, e: VmError) {
    let mut g = lock_clean(slot);
    match &*g {
        None => *g = Some(e),
        Some(prev) if prev.msg.contains(ABORTED) && !e.msg.contains(ABORTED) => *g = Some(e),
        _ => {}
    }
}

impl Vm {
    /// Executes candidate loop `id` for iterations `lo..hi`.
    pub(crate) fn run_par_loop(
        &self,
        ctx: &mut ThreadCtx,
        id: u32,
        lo: i64,
        hi: i64,
    ) -> Result<(), VmError> {
        if lo >= hi {
            return Ok(());
        }
        let lc = &self.program.loops[id as usize];
        let mode = lc.mode.unwrap_or(ParMode::DoAll);
        let body = lc.body_entry;
        let sync = Arc::new(LoopSync::new(lo));

        if ctx.in_parallel || self.config.nthreads == 1 {
            return self.run_inline(ctx, id, body, lo, hi, &sync);
        }

        let n = self.config.nthreads;
        // Wall time per dynamic loop entry, attributed by the master
        // (profiling only; `Instant::now` is off the disabled path).
        let wall_t0 = ctx.prof.is_some().then(Instant::now);
        if let (Some(sink), true) = (self.trace_sink(), ctx.trace.is_some()) {
            let ev = TraceEvent {
                ts_ns: sink.now_ns(),
                dur_ns: 0,
                a: id as u64,
                b: n as u64,
                tid: ctx.tid,
                kind: EventKind::Dispatch,
            };
            ctx.emit(ev);
        }
        let queues =
            if mode == ParMode::DoAll && self.config.doall_schedule == DoallSchedule::Stealing {
                StealQueue::split(lo, hi, n)
            } else {
                Vec::new()
            };
        let d = Arc::new(LoopDispatch {
            id,
            mode,
            body,
            lo,
            hi,
            frame_base: ctx.frame_base,
            chunk: chunk_size(hi - lo, n),
            schedule: self.config.doall_schedule,
            sync: Arc::clone(&sync),
            queues,
            err: Mutex::new(None),
        });

        let pool = match self.config.thread_mode {
            // The pool is open for the duration of `Vm::run`; a `ParLoop`
            // reaching here outside a run (or under the baseline backend)
            // falls back to per-loop spawning.
            ThreadMode::Pool => self.pool().filter(|p| p.is_open()),
            ThreadMode::SpawnPerLoop => None,
        };
        match pool {
            Some(pool) => {
                pool.begin(Arc::clone(&d));
                self.master_share(ctx, &d);
                pool.wait_done();
            }
            None => {
                std::thread::scope(|scope| {
                    for t in 1..n {
                        let d = &d;
                        scope.spawn(move || {
                            let mut wctx =
                                ThreadCtx::new(t, self.stack_base_of(t), self.config.stack_bytes);
                            self.worker_share(&mut wctx, d, t);
                        });
                    }
                    self.master_share(ctx, &d);
                });
            }
        }
        if let (Some(t0), Some(p)) = (wall_t0, ctx.prof.as_deref_mut()) {
            let prev = p.enter_loop(id);
            p.add_wall(t0.elapsed().as_nanos() as u64);
            p.exit_loop(prev);
        }
        let first_err = lock_clean(&d.err).take();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Emits one worker's participation span for a loop (and a trap
    /// instant if the worker itself trapped — abort-induced bailouts of
    /// its peers carry the `u32::MAX` sentinel pc and are skipped).
    fn trace_loop_span(
        &self,
        ctx: &mut ThreadCtx,
        loop_id: u32,
        t0: Option<u64>,
        err: Option<&VmError>,
    ) {
        let Some(sink) = self.trace_sink() else {
            return;
        };
        let now = sink.now_ns();
        if let Some(t0) = t0 {
            let ev = TraceEvent {
                ts_ns: t0,
                dur_ns: now.saturating_sub(t0),
                a: loop_id as u64,
                b: 0,
                tid: ctx.tid,
                kind: EventKind::LoopRun,
            };
            ctx.emit(ev);
        }
        if let Some(e) = err {
            if e.pc != u32::MAX {
                let ev = TraceEvent {
                    ts_ns: now,
                    dur_ns: 0,
                    a: e.pc as u64,
                    b: loop_id as u64,
                    tid: ctx.tid,
                    kind: EventKind::Trap,
                };
                ctx.emit(ev);
            }
        }
    }

    /// Inline serial execution on the current thread (nested loops and
    /// single-threaded runs). The loop is marked "in parallel" for its
    /// duration so nested candidate loops neither re-enter the scheduler
    /// nor record their own iteration costs (their cost is part of this
    /// loop's iterations; double-recording would skew the simulator's
    /// serial-remainder accounting).
    fn run_inline(
        &self,
        ctx: &mut ThreadCtx,
        id: u32,
        body: u32,
        lo: i64,
        hi: i64,
        sync: &Arc<LoopSync>,
    ) -> Result<(), VmError> {
        let record = self.config.record_iteration_costs && !ctx.in_parallel;
        // Costs are buffered locally and flushed once per loop: the trace
        // map's mutex is off the per-iteration path.
        let mut costs: Vec<crate::vm::IterCost> = Vec::new();
        let was_in_parallel = ctx.in_parallel;
        ctx.in_parallel = true;
        ctx.sync_stack.push((id, Arc::clone(sync)));
        let prof_prev = ctx.prof.as_deref_mut().map(|p| p.enter_loop(id));
        let wall_t0 = ctx.prof.is_some().then(Instant::now);
        let span_t0 = match (self.trace_sink(), &ctx.trace) {
            (Some(sink), Some(_)) => Some(sink.now_ns()),
            _ => None,
        };
        let mut obs = NullObserver;
        let mut result = Ok(());
        for i in lo..hi {
            ctx.iter_stack.push(i);
            ctx.posted = false;
            let start = ctx.counters;
            ctx.wait_mark = None;
            ctx.post_mark = None;
            let r = self.exec_region(ctx, body, &mut obs);
            ctx.iter_stack.pop();
            if let Some(p) = ctx.prof.as_deref_mut() {
                p.record_iter(ctx.counters.work - start.work);
            }
            if record {
                let end = ctx.counters.work;
                let wait = ctx.wait_mark.unwrap_or(end).clamp(start.work, end);
                let post = ctx.post_mark.unwrap_or(end).clamp(wait, end);
                costs.push(crate::vm::IterCost {
                    pre: wait - start.work,
                    window: post - wait,
                    post: end - post,
                    localize_calls: ctx.counters.localize_calls - start.localize_calls,
                    localize_bytes: ctx.counters.localize_copied_bytes
                        - start.localize_copied_bytes,
                    private_direct: ctx.counters.private_direct - start.private_direct,
                });
            }
            if let Err(e) = r {
                result = Err(e);
                break;
            }
            self.post_iteration(ctx, sync, i);
        }
        if record {
            // One vector per dynamic entry, partial on error (matching the
            // iterations that actually ran).
            lock_clean(&self.iter_trace)
                .entry(id)
                .or_default()
                .push(costs);
        }
        if let Some(prev) = prof_prev {
            let wall = wall_t0.expect("profiling measured wall").elapsed();
            let p = ctx.prof.as_deref_mut().expect("profiler armed");
            p.add_wall(wall.as_nanos() as u64);
            p.exit_loop(prev);
        }
        self.trace_loop_span(ctx, id, span_t0, result.as_ref().err());
        ctx.sync_stack.pop();
        ctx.in_parallel = was_in_parallel;
        self.commit_private_copies(ctx);
        result
    }

    /// The master's participation in a dispatched loop (worker 0, on its
    /// own live context).
    fn master_share(&self, ctx: &mut ThreadCtx, d: &LoopDispatch) {
        ctx.in_parallel = true;
        ctx.sync_stack.push((d.id, Arc::clone(&d.sync)));
        let prof_prev = ctx.prof.as_deref_mut().map(|p| p.enter_loop(d.id));
        let span_t0 = match (self.trace_sink(), &ctx.trace) {
            (Some(sink), Some(_)) => Some(sink.now_ns()),
            _ => None,
        };
        let r = self.worker_loop(ctx, d, 0);
        if let Some(prev) = prof_prev {
            ctx.prof
                .as_deref_mut()
                .expect("profiler armed")
                .exit_loop(prev);
        }
        self.trace_loop_span(ctx, d.id, span_t0, r.as_ref().err());
        ctx.sync_stack.pop();
        ctx.in_parallel = false;
        self.commit_private_copies(ctx);
        if let Err(e) = r {
            record_error(&d.err, e);
        }
    }

    /// One non-master worker's participation: reset the (fresh or pooled)
    /// context for this dispatch, run, commit privatized copies, flush
    /// counters to the lock-free per-worker slot.
    fn worker_share(&self, wctx: &mut ThreadCtx, d: &LoopDispatch, wid: u32) {
        wctx.reset_for_dispatch(d.frame_base);
        self.arm_instruments(wctx);
        wctx.sync_stack.push((d.id, Arc::clone(&d.sync)));
        let prof_prev = wctx.prof.as_deref_mut().map(|p| p.enter_loop(d.id));
        let span_t0 = match (self.trace_sink(), &wctx.trace) {
            (Some(sink), Some(_)) => Some(sink.now_ns()),
            _ => None,
        };
        let r = self.worker_loop(wctx, d, wid);
        if let Some(prev) = prof_prev {
            wctx.prof
                .as_deref_mut()
                .expect("profiler armed")
                .exit_loop(prev);
        }
        self.trace_loop_span(wctx, d.id, span_t0, r.as_ref().err());
        wctx.sync_stack.pop();
        self.commit_private_copies(wctx);
        self.flush_worker_counters(wid, wctx);
        // Ring drain and profile merge ride the same once-per-dispatch
        // boundary as the counter flush.
        self.drain_instruments(wctx);
        if let Err(e) = r {
            record_error(&d.err, e);
        }
    }

    /// Pool-dispatch entry: runs `worker_share` on worker `wid`'s
    /// persistent context (called from [`crate::pool::worker_entry`]).
    pub(crate) fn run_dispatch_worker(&self, wid: u32, d: &LoopDispatch) {
        let pool = self.pool().expect("pool dispatch without a pool");
        let mut wctx = pool.ctx(wid).lock().unwrap();
        self.worker_share(&mut wctx, d, wid);
    }

    /// One worker's share of the loop. Sets the abort flag before returning
    /// an error so peers spinning in `Wait` escape.
    fn worker_loop(&self, ctx: &mut ThreadCtx, d: &LoopDispatch, wid: u32) -> Result<(), VmError> {
        let res = match d.mode {
            ParMode::DoAll => match d.schedule {
                DoallSchedule::Stealing => self.doall_stealing(ctx, d, wid),
                DoallSchedule::Static => self.doall_static(ctx, d),
            },
            ParMode::DoAcross => self.doacross(ctx, d),
        };
        if res.is_err() {
            d.sync.abort.store(true, Ordering::Relaxed);
        }
        res
    }

    /// Runs the chunk `[s, e)` of a DOALL loop, checking the abort flag
    /// before each iteration.
    fn run_chunk(
        &self,
        ctx: &mut ThreadCtx,
        d: &LoopDispatch,
        s: i64,
        e: i64,
    ) -> Result<(), VmError> {
        let mut obs = NullObserver;
        for i in s..e {
            if d.sync.abort.load(Ordering::Relaxed) {
                return Err(VmError::new(u32::MAX as usize, ABORTED));
            }
            ctx.iter_stack.push(i);
            let w0 = ctx.counters.work;
            let step = self.exec_region(ctx, d.body, &mut obs);
            ctx.iter_stack.pop();
            if let Some(p) = ctx.prof.as_deref_mut() {
                p.record_iter(ctx.counters.work - w0);
            }
            step?;
        }
        Ok(())
    }

    /// DOALL with chunked dynamic scheduling plus work stealing: drain the
    /// own queue front-to-back in `chunk`-sized claims; when empty, steal
    /// the back half of the first non-empty victim (scanning round-robin
    /// from the next worker) and keep going. When no victim has a stealable
    /// share the remaining iterations are all being executed — done.
    fn doall_stealing(
        &self,
        ctx: &mut ThreadCtx,
        d: &LoopDispatch,
        wid: u32,
    ) -> Result<(), VmError> {
        let nq = d.queues.len();
        let own = &d.queues[wid as usize];
        loop {
            while let Some((s, e)) = own.pop_front(d.chunk) {
                self.run_chunk(ctx, d, s, e)?;
            }
            let mut stole = false;
            for off in 1..nq {
                let victim_idx = (wid as usize + off) % nq;
                let victim = &d.queues[victim_idx];
                if let Some((s, e)) = victim.steal_half() {
                    if let Some(pool) = self.pool() {
                        pool.counters.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    if let (Some(sink), true) = (self.trace_sink(), ctx.trace.is_some()) {
                        let ev = TraceEvent {
                            ts_ns: sink.now_ns(),
                            dur_ns: 0,
                            a: d.id as u64,
                            b: victim_idx as u64,
                            tid: ctx.tid,
                            kind: EventKind::Steal,
                        };
                        ctx.emit(ev);
                    }
                    own.install(s, e);
                    stole = true;
                    break;
                }
            }
            if !stole {
                return Ok(());
            }
        }
    }

    /// DOALL with the seed's static split: one fixed contiguous chunk per
    /// worker (kept as the load-imbalance baseline).
    fn doall_static(&self, ctx: &mut ThreadCtx, d: &LoopDispatch) -> Result<(), VmError> {
        let n = self.config.nthreads as i64;
        let total = d.hi - d.lo;
        let chunk = (total + n - 1) / n;
        let start = d.lo + ctx.tid as i64 * chunk;
        let end = (start + chunk).min(d.hi);
        self.run_chunk(ctx, d, start, end.max(start))
    }

    /// DOACROSS: ordered chunk-1 claiming through the shared counter, with
    /// `Wait`/post cross-iteration ordering.
    fn doacross(&self, ctx: &mut ThreadCtx, d: &LoopDispatch) -> Result<(), VmError> {
        let mut obs = NullObserver;
        loop {
            let i = d.sync.next.fetch_add(1, Ordering::Relaxed);
            if i >= d.hi {
                return Ok(());
            }
            if d.sync.abort.load(Ordering::Relaxed) {
                return Err(VmError::new(u32::MAX as usize, ABORTED));
            }
            ctx.iter_stack.push(i);
            ctx.posted = false;
            let w0 = ctx.counters.work;
            let step = self.exec_region(ctx, d.body, &mut obs);
            if step.is_ok() {
                self.post_iteration(ctx, &d.sync, i);
            }
            ctx.iter_stack.pop();
            if let Some(p) = ctx.prof.as_deref_mut() {
                p.record_iter(ctx.counters.work - w0);
            }
            step?;
        }
    }

    /// Runs the outlined body region at `entry` to its `Ret`.
    pub(crate) fn exec_region(
        &self,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<(), VmError> {
        ctx.frames.push(Frame {
            ret_pc: None,
            saved_base: ctx.frame_base,
            saved_sp: ctx.sp,
            saved_rbase: ctx.reg_base,
        });
        let v = self.exec(ctx, entry, obs)?;
        debug_assert!(v.is_none(), "loop body regions return no value");
        Ok(())
    }
}
