//! Runtime privatization — the SpiceC-style baseline of Section 4.2.1.
//!
//! Instead of expanding data structures at compile time, the baseline keeps
//! the program unchanged and routes every *private* access (per
//! Definition 5) through an address-translation runtime:
//!
//! * on the first touch of a heap structure, the whole containing
//!   allocation is **copied into thread-local space** (copy-in),
//! * subsequent accesses translate the shared address to the private copy
//!   (the paper's *heap prefix* fast path — here an O(log n) registry
//!   lookup plus a per-thread hash map, safe for interior pointers exactly
//!   as the paper's extended scheme),
//! * at loop end, thread-local changes are **committed** back to the shared
//!   space and the copies are released.
//!
//! Accesses to globals and stack locations return unchanged: the paper
//! performs their access control statically at compile time; the runtime
//! cost we measure (a call + classification per access, plus copying for
//! heap data) mirrors the paper's accounting.

use crate::vm::{ThreadCtx, Vm, VmError};

/// A thread-local private copy of one shared heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivCopy {
    /// Id of the shared allocation this copy shadows (detects reuse of a
    /// freed base address).
    pub alloc_id: u64,
    /// Base of the private copy.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl Vm {
    /// Translates `addr` to the current thread's private copy, performing
    /// copy-in on first touch. Static (non-heap) addresses pass through.
    ///
    /// # Errors
    ///
    /// Traps when `addr` points at no live allocation or the copy cannot be
    /// allocated.
    pub(crate) fn localize(
        &self,
        ctx: &mut ThreadCtx,
        addr: u64,
        pc: usize,
    ) -> Result<u64, VmError> {
        ctx.counters.localize_calls += 1;
        if addr < self.heap.base() {
            // Global or stack: handled statically in SpiceC; pass through.
            return Ok(addr);
        }
        let a = self.heap.containing(addr).ok_or_else(|| {
            VmError::new(
                pc,
                format!("localize: address {addr} is not in a live allocation"),
            )
        })?;
        if let Some(copy) = ctx.priv_map.get(&a.base) {
            if copy.alloc_id == a.id {
                return Ok(copy.base + (addr - a.base));
            }
            // Stale entry: the base was freed and reallocated. Release the
            // old copy and redo the copy-in below.
            let stale = *copy;
            ctx.priv_map.remove(&a.base);
            self.heap.free(stale.base);
        }
        let c = self
            .heap
            .alloc(a.size)
            .ok_or_else(|| VmError::new(pc, "localize: out of memory for private copy"))?;
        if a.size > 0 {
            self.mem.copy(a.base, c.base, a.size);
        }
        ctx.counters.localize_copied_bytes += a.size;
        ctx.priv_map.insert(
            a.base,
            PrivCopy {
                alloc_id: a.id,
                base: c.base,
                size: a.size,
            },
        );
        Ok(c.base + (addr - a.base))
    }

    /// Commits and releases all of `ctx`'s private copies (called at
    /// parallel-loop end). When [`crate::vm::VmConfig::priv_commit`] is set,
    /// each copy's bytes are written back to the shared allocation (if it is
    /// still live) before the copy is freed.
    pub(crate) fn commit_private_copies(&self, ctx: &mut ThreadCtx) {
        let entries: Vec<(u64, PrivCopy)> = ctx.priv_map.drain().collect();
        for (shared_base, copy) in entries {
            if self.config.priv_commit {
                if let Some(live) = self.heap.at_base(shared_base) {
                    if live.id == copy.alloc_id && copy.size > 0 {
                        self.mem.copy(copy.base, shared_base, copy.size);
                        ctx.counters.localize_copied_bytes += copy.size;
                    }
                }
            }
            self.heap.free(copy.base);
        }
    }
}
