//! The register interpreter with threaded dispatch.
//!
//! Executes the register translation ([`dse_ir::regcode`]) of the current
//! program: operands live in a flat per-thread register file of untagged
//! `u64` bit patterns (floats as IEEE bits, integers as two's complement)
//! instead of a tagged `Vec<Value>` operand stack, and the dispatch loop
//! prefetches the next opcode before jumping back to the match — so the
//! branch predictor sees the load of the next instruction as early as
//! possible and the hot path never touches `Vec` push/pop traffic.
//!
//! Semantics are defined by the reference stack interpreter
//! ([`Vm::exec_stack`]): every trap condition, observer callback, counter
//! increment, and builtin effect here mirrors it, and traps report the
//! *originating stack pc* through [`RegProgram::origin`] so diagnostics
//! are identical under either backend. Where the two encodings can't
//! match exactly — `Counters::work` and the opcode profiler count fused
//! super-instructions as one — the differential suite compares only the
//! backend-invariant counter classes.
//!
//! Register windows: a call does not save registers; the callee's window
//! starts at the caller's argument base, and the caller's `Frame`
//! remembers `saved_rbase`. Parallel loop bodies run with the window
//! based at the loop-bound slot, and each worker reuses its register file
//! across iterations (and across loops) without clearing — the register
//! analogue of the frame-reuse the paper's executor applies to stacks.

use crate::mem::sign_extend;
use crate::observer::Observer;
use crate::prof::OpClass;
use crate::tracebuf::{EventKind, TraceEvent};
use crate::vm::{cmp_result, Backoff, Frame, ThreadCtx, Value, Vm, VmError};
use dse_ir::bytecode::{CmpOp, IBinOp, LoopEvent};
use dse_ir::bytecode::{FBinOp, GLOBAL_BASE};
use dse_ir::regcode::{builtin_sig, RInstr, RegProgram};
use dse_ir::sites::{AccessKind, NO_SITE};
use std::sync::Arc;

/// The profiler class of one register instruction, bucketed to match
/// [`crate::prof::class_of`] on the stack encoding (fused instructions
/// count once, under the class of their primary effect).
#[inline]
fn rclass_of(instr: &RInstr) -> OpClass {
    match instr {
        RInstr::LdcI { .. } | RInstr::LdcF { .. } | RInstr::Mov { .. } | RInstr::Tuck { .. } => {
            OpClass::Stack
        }
        RInstr::FrameAddr { .. }
        | RInstr::GlobalAddr { .. }
        | RInstr::TidScaled { .. }
        | RInstr::TidSpanScaled { .. }
        | RInstr::FrameAddrTid { .. }
        | RInstr::GlobalAddrTid { .. }
        | RInstr::IterIdx { .. } => OpClass::Addr,
        RInstr::Load { .. }
        | RInstr::LdFrame { .. }
        | RInstr::LdGlobal { .. }
        | RInstr::Store { .. }
        | RInstr::StFrame { .. }
        | RInstr::MemCpy { .. } => OpClass::Mem,
        RInstr::IBin { .. }
        | RInstr::IBinImm { .. }
        | RInstr::FBin { .. }
        | RInstr::ICmp { .. }
        | RInstr::ICmpImm { .. }
        | RInstr::FCmp { .. }
        | RInstr::INeg { .. }
        | RInstr::FNeg { .. }
        | RInstr::BNot { .. }
        | RInstr::LNot { .. }
        | RInstr::I2F { .. }
        | RInstr::F2I { .. }
        | RInstr::Sext { .. } => OpClass::Alu,
        RInstr::Jump { .. }
        | RInstr::JumpIfZ { .. }
        | RInstr::JumpIfNZ { .. }
        | RInstr::JumpICmp { .. }
        | RInstr::JumpICmpImm { .. }
        | RInstr::JumpFCmp { .. }
        | RInstr::Call { .. }
        | RInstr::Ret { .. }
        | RInstr::LoopMark { .. }
        | RInstr::ParLoop { .. }
        | RInstr::Halt { .. }
        | RInstr::Unreachable => OpClass::Ctl,
        RInstr::Wait { .. } | RInstr::Post { .. } => OpClass::Sync,
        // Inlined hot builtins keep their stack-encoding class so per-class
        // profiles stay comparable across backends.
        RInstr::CallBuiltin { .. }
        | RInstr::Fsqrt { .. }
        | RInstr::Fabs { .. }
        | RInstr::Tid { .. }
        | RInstr::NThreads { .. } => OpClass::Builtin,
        RInstr::Localize { .. } => OpClass::Localize,
    }
}

impl Vm {
    /// Executes register code starting at register pc `entry` until the
    /// current sentinel frame returns. The semantics contract is
    /// [`Vm::exec_stack`]'s; see the module docs for how the encodings are
    /// kept observationally equivalent.
    pub(crate) fn exec_reg(
        &self,
        rp: &RegProgram,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, VmError> {
        let code = &rp.code[..];
        let window = rp.frame_regs as usize;
        let need = ctx.reg_base + window;
        if ctx.regs.len() < need {
            ctx.regs.resize(need, 0);
        }
        let mut pc = entry as usize;
        // Traps always report the originating *stack* pc, so error
        // messages and site attribution match the reference backend.
        macro_rules! trap {
            ($($arg:tt)*) => {
                return Err(VmError::new(rp.origin_pc(pc) as usize, format!($($arg)*)))
            };
        }
        // Register file accessors over the current window.
        macro_rules! rg {
            ($r:expr) => {
                ctx.regs[ctx.reg_base + ($r) as usize]
            };
        }
        macro_rules! rgi {
            ($r:expr) => {
                rg!($r) as i64
            };
        }
        macro_rules! rgf {
            ($r:expr) => {
                f64::from_bits(rg!($r))
            };
        }
        // Threaded dispatch: every arm computes its successor pc and
        // prefetches that opcode before handing control back to the match.
        let mut instr = code[pc];
        macro_rules! step {
            () => {{
                pc += 1;
                instr = code[pc];
                continue;
            }};
        }
        macro_rules! goto {
            ($t:expr) => {{
                pc = $t as usize;
                instr = code[pc];
                continue;
            }};
        }
        loop {
            ctx.counters.work += 1;
            if ctx.counters.work > self.config.max_instructions {
                trap!("instruction budget exceeded");
            }
            if let Some(p) = ctx.prof.as_deref_mut() {
                p.tick(rclass_of(&instr));
            }
            match instr {
                RInstr::LdcI { d, v } => {
                    rg!(d) = v as u64;
                    step!();
                }
                RInstr::LdcF { d, v } => {
                    rg!(d) = v.to_bits();
                    step!();
                }
                RInstr::Mov { d, s } => {
                    rg!(d) = rg!(s);
                    step!();
                }
                RInstr::Tuck { d } => {
                    // [a, b] -> [b, a, b] over r[d], r[d+1], r[d+2].
                    let a = rg!(d);
                    let b = rg!(d + 1);
                    rg!(d) = b;
                    rg!(d + 1) = a;
                    rg!(d + 2) = b;
                    step!();
                }
                RInstr::FrameAddr { d, off } => {
                    rg!(d) = (ctx.frame_base + off as u64) as i64 as u64;
                    step!();
                }
                RInstr::GlobalAddr { d, addr } => {
                    rg!(d) = addr as i64 as u64;
                    step!();
                }
                RInstr::TidScaled { d, k } => {
                    rg!(d) = (ctx.tid as i64 * k) as u64;
                    step!();
                }
                RInstr::TidSpanScaled { d, z } => {
                    let span = rgi!(d);
                    if z == 0 {
                        trap!("TidSpanScaled with zero element size");
                    }
                    rg!(d) = (ctx.tid as i64 * span / z * z) as u64;
                    step!();
                }
                RInstr::FrameAddrTid { d, offset, stride } => {
                    ctx.counters.private_direct += 1;
                    let a = ctx.frame_base + offset as u64;
                    rg!(d) = (a as i64 + ctx.tid as i64 * stride) as u64;
                    step!();
                }
                RInstr::GlobalAddrTid { d, addr, stride } => {
                    ctx.counters.private_direct += 1;
                    rg!(d) = (addr as i64 + ctx.tid as i64 * stride) as u64;
                    step!();
                }
                RInstr::IterIdx { d, depth } => {
                    let n = ctx.iter_stack.len();
                    let dep = depth as usize;
                    if dep >= n {
                        trap!("IterIdx outside parallel loop body");
                    }
                    rg!(d) = ctx.iter_stack[n - 1 - dep] as u64;
                    step!();
                }
                RInstr::Load {
                    d,
                    width,
                    is_float,
                    site,
                } => {
                    let addr = rgi!(d) as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid load of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Load, addr, width as u32, ctx.sp);
                    }
                    let raw = self.mem.read(addr, width as u32);
                    rg!(d) = if is_float {
                        raw
                    } else {
                        sign_extend(raw, width as u32) as u64
                    };
                    step!();
                }
                RInstr::LdFrame {
                    d,
                    off,
                    width,
                    is_float,
                    site,
                } => {
                    let addr = ctx.frame_base + off as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid load of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Load, addr, width as u32, ctx.sp);
                    }
                    let raw = self.mem.read(addr, width as u32);
                    rg!(d) = if is_float {
                        raw
                    } else {
                        sign_extend(raw, width as u32) as u64
                    };
                    step!();
                }
                RInstr::LdGlobal {
                    d,
                    addr,
                    width,
                    is_float,
                    site,
                } => {
                    let addr = addr as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid load of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Load, addr, width as u32, ctx.sp);
                    }
                    let raw = self.mem.read(addr, width as u32);
                    rg!(d) = if is_float {
                        raw
                    } else {
                        sign_extend(raw, width as u32) as u64
                    };
                    step!();
                }
                RInstr::Store {
                    a,
                    v,
                    width,
                    is_float: _,
                    site,
                } => {
                    let addr = rgi!(a) as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid store of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Store, addr, width as u32, ctx.sp);
                    }
                    // Registers already hold the raw bit pattern either way.
                    self.mem.write(addr, width as u32, rg!(v));
                    step!();
                }
                RInstr::StFrame {
                    off,
                    v,
                    width,
                    is_float: _,
                    site,
                } => {
                    let addr = ctx.frame_base + off as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid store of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Store, addr, width as u32, ctx.sp);
                    }
                    self.mem.write(addr, width as u32, rg!(v));
                    step!();
                }
                RInstr::MemCpy {
                    dst,
                    src,
                    size,
                    load_site,
                    store_site,
                } => {
                    let dsta = rgi!(dst) as u64;
                    let srca = rgi!(src) as u64;
                    let sz = size as u64;
                    if srca < GLOBAL_BASE
                        || dsta < GLOBAL_BASE
                        || !self.mem.in_bounds(srca, sz)
                        || !self.mem.in_bounds(dsta, sz)
                    {
                        trap!("invalid memcpy of {size} bytes {srca} -> {dsta}");
                    }
                    if load_site != NO_SITE {
                        obs.on_access(load_site, AccessKind::Load, srca, size, ctx.sp);
                    }
                    if store_site != NO_SITE {
                        obs.on_access(store_site, AccessKind::Store, dsta, size, ctx.sp);
                    }
                    self.mem.copy(srca, dsta, sz);
                    step!();
                }
                RInstr::IBin { op, d, l, r } => {
                    let lv = rgi!(l);
                    let rv = rgi!(r);
                    rg!(d) = ibin(op, lv, rv)
                        .map_err(|m| VmError::new(rp.origin_pc(pc) as usize, m))?
                        as u64;
                    step!();
                }
                RInstr::IBinImm { op, d, l, imm } => {
                    let lv = rgi!(l);
                    rg!(d) = ibin(op, lv, imm)
                        .map_err(|m| VmError::new(rp.origin_pc(pc) as usize, m))?
                        as u64;
                    step!();
                }
                RInstr::FBin { op, d, l, r } => {
                    let lv = rgf!(l);
                    let rv = rgf!(r);
                    let v = match op {
                        FBinOp::Add => lv + rv,
                        FBinOp::Sub => lv - rv,
                        FBinOp::Mul => lv * rv,
                        FBinOp::Div => lv / rv,
                    };
                    rg!(d) = v.to_bits();
                    step!();
                }
                RInstr::ICmp { op, d, l, r } => {
                    let res = cmp_result(op, rgi!(l).cmp(&rgi!(r)));
                    rg!(d) = res as u64;
                    step!();
                }
                RInstr::ICmpImm { op, d, l, imm } => {
                    let res = cmp_result(op, rgi!(l).cmp(&imm));
                    rg!(d) = res as u64;
                    step!();
                }
                RInstr::FCmp { op, d, l, r } => {
                    rg!(d) = fcmp(op, rgf!(l), rgf!(r)) as u64;
                    step!();
                }
                RInstr::INeg { d } => {
                    rg!(d) = rgi!(d).wrapping_neg() as u64;
                    step!();
                }
                RInstr::FNeg { d } => {
                    rg!(d) = (-rgf!(d)).to_bits();
                    step!();
                }
                RInstr::BNot { d } => {
                    rg!(d) = (!rgi!(d)) as u64;
                    step!();
                }
                RInstr::LNot { d } => {
                    rg!(d) = (rgi!(d) == 0) as u64;
                    step!();
                }
                RInstr::I2F { d } => {
                    rg!(d) = (rgi!(d) as f64).to_bits();
                    step!();
                }
                RInstr::F2I { d } => {
                    rg!(d) = (rgf!(d) as i64) as u64;
                    step!();
                }
                RInstr::Sext { d, w } => {
                    rg!(d) = sign_extend(rg!(d), w as u32) as u64;
                    step!();
                }
                RInstr::Jump { t } => goto!(t),
                RInstr::JumpIfZ { s, t } => {
                    if rgi!(s) == 0 {
                        goto!(t);
                    }
                    step!();
                }
                RInstr::JumpIfNZ { s, t } => {
                    if rgi!(s) != 0 {
                        goto!(t);
                    }
                    step!();
                }
                RInstr::JumpICmp {
                    op,
                    l,
                    r,
                    t,
                    on_true,
                } => {
                    if cmp_result(op, rgi!(l).cmp(&rgi!(r))) == on_true {
                        goto!(t);
                    }
                    step!();
                }
                RInstr::JumpICmpImm {
                    op,
                    l,
                    imm,
                    t,
                    on_true,
                } => {
                    if cmp_result(op, rgi!(l).cmp(&imm)) == on_true {
                        goto!(t);
                    }
                    step!();
                }
                RInstr::JumpFCmp {
                    op,
                    l,
                    r,
                    t,
                    on_true,
                } => {
                    if fcmp(op, rgf!(l), rgf!(r)) == on_true {
                        goto!(t);
                    }
                    step!();
                }
                RInstr::Call { target, fi, abase } => {
                    let callee = self.program.func(fi);
                    let new_base = dse_lang::types::round_up(ctx.sp, 8);
                    let new_sp = new_base + callee.frame_size as u64;
                    if new_sp > ctx.stack_limit {
                        trap!("stack overflow calling `{}`", callee.name);
                    }
                    self.mem.zero(new_base, callee.frame_size as u64);
                    // Args sit in r[abase..abase+nargs] in parameter order;
                    // the translation proved their types, so the raw bits
                    // go straight to the parameter slots.
                    for (pi, &(off, kind)) in callee.params.iter().enumerate() {
                        let raw = rg!(abase + pi as u16);
                        self.mem
                            .write(new_base + off as u64, kind.width as u32, raw);
                    }
                    ctx.frames.push(Frame {
                        ret_pc: Some(pc as u32 + 1),
                        saved_base: ctx.frame_base,
                        saved_sp: ctx.sp,
                        saved_rbase: ctx.reg_base,
                    });
                    ctx.frame_base = new_base;
                    ctx.sp = new_sp;
                    ctx.reg_base += abase as usize;
                    let need = ctx.reg_base + window;
                    if ctx.regs.len() < need {
                        ctx.regs.resize(need, 0);
                    }
                    goto!(target);
                }
                RInstr::CallBuiltin { b, abase, orig_pc } => {
                    // Bridge to the shared builtin implementation through
                    // the operand stack, with the stack pc for trap and
                    // allocation-site attribution parity.
                    let (arg_f, ret_f) = builtin_sig(b);
                    for (i, &isf) in arg_f.iter().enumerate() {
                        let bits = rg!(abase + i as u16);
                        ctx.ops.push(if isf {
                            Value::F(f64::from_bits(bits))
                        } else {
                            Value::I(bits as i64)
                        });
                    }
                    self.call_builtin(b, ctx, orig_pc as usize, obs)?;
                    if let Some(isf) = ret_f {
                        let v = match ctx.ops.pop() {
                            Some(v) => v,
                            None => trap!("builtin returned no value"),
                        };
                        debug_assert_eq!(matches!(v, Value::F(_)), isf);
                        rg!(abase) = v.to_bits();
                    }
                    step!();
                }
                RInstr::Fsqrt { d } => {
                    rg!(d) = rgf!(d).sqrt().to_bits();
                    step!();
                }
                RInstr::Fabs { d } => {
                    rg!(d) = rgf!(d).abs().to_bits();
                    step!();
                }
                RInstr::Tid { d } => {
                    rg!(d) = (ctx.tid as i64) as u64;
                    step!();
                }
                RInstr::NThreads { d } => {
                    rg!(d) = (self.config.nthreads as i64) as u64;
                    step!();
                }
                RInstr::Ret {
                    src,
                    has_val,
                    is_float,
                } => {
                    let bits = if has_val { rg!(src) } else { 0 };
                    let fr = match ctx.frames.pop() {
                        Some(f) => f,
                        None => trap!("return with empty call stack"),
                    };
                    ctx.frame_base = fr.saved_base;
                    ctx.sp = fr.saved_sp;
                    match fr.ret_pc {
                        Some(t) => {
                            if has_val {
                                // The callee window base is the caller's
                                // abase slot: drop the result there, then
                                // restore the caller's window.
                                ctx.regs[ctx.reg_base] = bits;
                            }
                            ctx.reg_base = fr.saved_rbase;
                            goto!(t);
                        }
                        None => {
                            ctx.reg_base = fr.saved_rbase;
                            return Ok(has_val.then(|| typed(bits, is_float)));
                        }
                    }
                }
                RInstr::LoopMark { ev, id } => {
                    let p = match ev {
                        LoopEvent::Begin => ctx.frame_base,
                        _ => ctx.sp,
                    };
                    obs.on_loop(ev, id, p, ctx.counters.work);
                    step!();
                }
                RInstr::ParLoop { id, lo, hi } => {
                    let lo_v = rgi!(lo);
                    let hi_v = rgi!(hi);
                    // The body region's window starts at the loop-bound
                    // slot; restore the master's window whether the loop
                    // completes or traps.
                    let saved_rbase = ctx.reg_base;
                    ctx.reg_base += lo as usize;
                    let need = ctx.reg_base + window;
                    if ctx.regs.len() < need {
                        ctx.regs.resize(need, 0);
                    }
                    let res = self.run_par_loop(ctx, id, lo_v, hi_v);
                    ctx.reg_base = saved_rbase;
                    res.map_err(|mut e| {
                        if e.pc == u32::MAX {
                            e.pc = rp.origin_pc(pc);
                        }
                        e
                    })?;
                    step!();
                }
                RInstr::Wait { id: _ } => {
                    ctx.counters.sync_ops += 1;
                    if ctx.wait_mark.is_none() {
                        ctx.wait_mark = Some(ctx.counters.work);
                    }
                    let my = match ctx.iter_stack.last() {
                        Some(&i) => i,
                        None => trap!("Wait outside iteration"),
                    };
                    let (loop_id, sync) = match ctx.sync_stack.last() {
                        Some((id, s)) => (*id, Arc::clone(s)),
                        None => trap!("Wait outside parallel loop"),
                    };
                    let t0 = match (self.trace_sink(), &ctx.trace) {
                        (Some(sink), Some(_)) => Some(sink.now_ns()),
                        _ => None,
                    };
                    let mut backoff = Backoff::new();
                    while sync.done.load(std::sync::atomic::Ordering::Acquire) < my {
                        if sync.abort.load(std::sync::atomic::Ordering::Relaxed) {
                            trap!("aborted while waiting (another worker trapped)");
                        }
                        backoff.step(&mut ctx.counters);
                    }
                    if let (Some(t0), Some(sink)) = (t0, self.trace_sink()) {
                        let ev = TraceEvent {
                            ts_ns: t0,
                            dur_ns: sink.now_ns().saturating_sub(t0),
                            a: loop_id as u64,
                            b: my as u64,
                            tid: ctx.tid,
                            kind: EventKind::WaitSpan,
                        };
                        ctx.emit(ev);
                    }
                    step!();
                }
                RInstr::Post { id: _ } => {
                    ctx.counters.sync_ops += 1;
                    if ctx.post_mark.is_none() {
                        ctx.post_mark = Some(ctx.counters.work);
                    }
                    let my = match ctx.iter_stack.last() {
                        Some(&i) => i,
                        None => trap!("Post outside iteration"),
                    };
                    let (loop_id, sync) = match ctx.sync_stack.last() {
                        Some((id, s)) => (*id, Arc::clone(s)),
                        None => trap!("Post outside parallel loop"),
                    };
                    self.post_iteration(ctx, &sync, my);
                    if let (Some(sink), true) = (self.trace_sink(), ctx.trace.is_some()) {
                        let ev = TraceEvent {
                            ts_ns: sink.now_ns(),
                            dur_ns: 0,
                            a: loop_id as u64,
                            b: my as u64,
                            tid: ctx.tid,
                            kind: EventKind::Post,
                        };
                        ctx.emit(ev);
                    }
                    step!();
                }
                RInstr::Localize { d, site: _ } => {
                    let addr = rgi!(d) as u64;
                    let translated = self.localize(ctx, addr, rp.origin_pc(pc) as usize)?;
                    rg!(d) = (translated as i64) as u64;
                    step!();
                }
                RInstr::Halt {
                    src,
                    has_val,
                    is_float,
                } => {
                    return Ok(has_val.then(|| typed(rg!(src), is_float)));
                }
                RInstr::Unreachable => {
                    trap!("unreachable code (register translation hole)");
                }
            }
        }
    }
}

/// Rebuilds a tagged [`Value`] from register bits.
#[inline]
fn typed(bits: u64, is_float: bool) -> Value {
    if is_float {
        Value::F(f64::from_bits(bits))
    } else {
        Value::I(bits as i64)
    }
}

/// Integer binary op with the reference backend's trap messages.
#[inline]
fn ibin(op: IBinOp, l: i64, r: i64) -> Result<i64, String> {
    Ok(match op {
        IBinOp::Add => l.wrapping_add(r),
        IBinOp::Sub => l.wrapping_sub(r),
        IBinOp::Mul => l.wrapping_mul(r),
        IBinOp::Div => match l.checked_div(r) {
            Some(v) => v,
            None => return Err(format!("division by zero or overflow ({l} / {r})")),
        },
        IBinOp::Rem => match l.checked_rem(r) {
            Some(v) => v,
            None => return Err(format!("remainder by zero or overflow ({l} % {r})")),
        },
        IBinOp::And => l & r,
        IBinOp::Or => l | r,
        IBinOp::Xor => l ^ r,
        IBinOp::Shl => l.wrapping_shl(r as u32 & 63),
        IBinOp::Shr => l.wrapping_shr(r as u32 & 63),
    })
}

/// Float comparison with the reference backend's NaN semantics.
#[inline]
fn fcmp(op: CmpOp, l: f64, r: f64) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
    }
}
