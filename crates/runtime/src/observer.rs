//! Observation hooks used by the dependence profiler.
//!
//! The profiler (in `dse-depprof`) implements [`Observer`] and receives
//! every *sited* memory access, candidate-loop event, and heap event during
//! a serial run. Parallel regions run unobserved (the paper profiles the
//! sequential program only). `dse-telemetry`'s `TraceObserver` implements
//! the same trait to stream the event feed as JSONL (`dsec --emit trace`).

use crate::mem::Allocation;
use dse_ir::bytecode::LoopEvent;
use dse_ir::sites::{AccessKind, SiteId};

/// Receiver for VM execution events.
///
/// All methods have empty default bodies so implementations override only
/// what they need.
pub trait Observer {
    /// A sited memory access executed. `sp` is the current stack pointer,
    /// letting the profiler filter out accesses to call frames created
    /// after the iteration started (which become thread-private stacks in
    /// the parallel execution).
    fn on_access(&mut self, site: SiteId, kind: AccessKind, addr: u64, width: u32, sp: u64) {
        let _ = (site, kind, addr, width, sp);
    }

    /// A candidate-loop event (serial lowering only). For
    /// [`LoopEvent::Begin`], `sp` is the *frame base* of the enclosing
    /// function (so the loop's frame-resident induction variable can be
    /// located); for `IterStart`/`End` it is the live stack pointer.
    /// `work` is the thread's instruction count so far, letting observers
    /// attribute execution time to loops (Table 4's %time column).
    fn on_loop(&mut self, ev: LoopEvent, loop_id: u32, sp: u64, work: u64) {
        let _ = (ev, loop_id, sp, work);
    }

    /// A heap allocation was created. `pc` is the allocating instruction,
    /// mapped back to the source call via
    /// [`dse_ir::CompiledProgram::alloc_sites`].
    fn on_alloc(&mut self, alloc: Allocation, pc: u32) {
        let _ = (alloc, pc);
    }

    /// A heap allocation was released (or superseded by `realloc`).
    fn on_free(&mut self, alloc: Allocation) {
        let _ = alloc;
    }
}

/// Observer that ignores everything (plain execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Memory layout facts exposed to observers (see [`crate::Vm::layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutInfo {
    /// The master thread's stack region `[base, limit)`.
    pub master_stack: (u64, u64),
    /// Start address of the heap region.
    pub heap_base: u64,
}
