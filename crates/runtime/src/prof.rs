//! The attributing (sampling-free) opcode profiler.
//!
//! When [`crate::vm::VmConfig::opcode_profile`] is set, the interpreter
//! charges every retired instruction to its [`OpClass`] under the loop the
//! thread is currently executing (`u32::MAX` = outside any candidate
//! loop, i.e. serial code). Attribution is exact, not sampled: the hot
//! path is one array increment on thread-local state; per-loop maps merge
//! into the VM once per dispatch, mirroring the counter flush.
//!
//! Per-iteration costs (instructions retired by one iteration) feed a
//! power-of-two histogram per loop, so `dsec profile` can show the
//! iteration cost distribution (p50/p90/p99) next to the class mix, and
//! the master adds each dynamic loop entry's wall time. Together these
//! answer "where does this loop's time go" without any tracing overhead
//! when the flag is off.

use dse_ir::bytecode::{Builtin, Instr};
use std::collections::HashMap;

/// Loop id the profiler charges serial (outside-loop) execution to.
pub const SERIAL_LOOP: u32 = u32::MAX;

/// Coarse instruction classes the profiler buckets by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OpClass {
    /// Operand-stack shuffling: push/dup/drop/tuck.
    Stack = 0,
    /// Address formation: frame/global/tid addressing, `IterIdx`.
    Addr = 1,
    /// Memory traffic: loads, stores, `MemCpy`.
    Mem = 2,
    /// Arithmetic, comparisons, conversions.
    Alu = 3,
    /// Control flow: jumps, calls, returns, loop markers.
    Ctl = 4,
    /// Cross-iteration synchronization: `Wait`/`Post`.
    Sync = 5,
    /// Builtin calls (allocation, I/O, intrinsics).
    Builtin = 6,
    /// Runtime-privatization address translation.
    Localize = 7,
}

/// Number of [`OpClass`] buckets.
pub const NCLASS: usize = 8;

/// Display names, indexed by `OpClass as usize`.
pub const CLASS_NAMES: [&str; NCLASS] = [
    "stack", "addr", "mem", "alu", "ctl", "sync", "builtin", "localize",
];

/// The class of one instruction.
#[inline]
pub fn class_of(instr: &Instr) -> OpClass {
    match instr {
        Instr::PushI(_) | Instr::PushF(_) | Instr::Dup | Instr::Drop | Instr::Tuck => {
            OpClass::Stack
        }
        Instr::FrameAddr(_)
        | Instr::GlobalAddr(_)
        | Instr::TidScaled(_)
        | Instr::FrameAddrTid { .. }
        | Instr::GlobalAddrTid { .. }
        | Instr::TidSpanScaled(_)
        | Instr::IterIdx(_) => OpClass::Addr,
        Instr::Load { .. } | Instr::Store { .. } | Instr::MemCpy { .. } => OpClass::Mem,
        Instr::IBin(_)
        | Instr::FBin(_)
        | Instr::ICmp(_)
        | Instr::FCmp(_)
        | Instr::INeg
        | Instr::FNeg
        | Instr::BNot
        | Instr::LNot
        | Instr::I2F
        | Instr::F2I
        | Instr::SextTrunc(_) => OpClass::Alu,
        Instr::Jump(_)
        | Instr::JumpIfZ(_)
        | Instr::JumpIfNZ(_)
        | Instr::Call(_)
        | Instr::Ret
        | Instr::LoopMark(..)
        | Instr::ParLoop(_)
        | Instr::Halt => OpClass::Ctl,
        Instr::Wait(_) | Instr::Post(_) => OpClass::Sync,
        Instr::CallBuiltin(b) => match b {
            // Localization-adjacent builtins still count as builtins; the
            // dedicated class tracks the `Localize` instruction the
            // transform inserts on privatized accesses.
            Builtin::Malloc
            | Builtin::Calloc
            | Builtin::Realloc
            | Builtin::ReallocExpanded
            | Builtin::Free
            | Builtin::InLong
            | Builtin::InFloat
            | Builtin::InLen
            | Builtin::OutLong
            | Builtin::OutFloat
            | Builtin::PrintLong
            | Builtin::PrintFloat
            | Builtin::Fsqrt
            | Builtin::Fabs
            | Builtin::MemCpy
            | Builtin::Tid
            | Builtin::NThreads => OpClass::Builtin,
        },
        Instr::Localize { .. } => OpClass::Localize,
    }
}

/// A power-of-two histogram over `u64` values: bucket `i` holds values
/// with `i` significant bits (bucket 0 = the value 0), i.e. value `v > 0`
/// lands in bucket `floor(log2 v) + 1`. Coarse (2x relative error) but
/// allocation-free and 65 slots — right-sized for per-iteration
/// instruction counts on the per-thread hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pow2Hist {
    counts: [u64; 65],
    count: u64,
    sum: u64,
}

impl Pow2Hist {
    /// An empty histogram.
    pub fn new() -> Pow2Hist {
        Pow2Hist {
            counts: [0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Adds `other`'s recordings into `self`.
    pub fn merge(&mut self, other: &Pow2Hist) {
        for (s, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *s += *o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total recordings.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`); 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i holds values with i significant bits; its
                // largest member is 2^i - 1 (bucket 0 holds only 0).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

impl Default for Pow2Hist {
    fn default() -> Self {
        Pow2Hist::new()
    }
}

/// Accumulated profile of one loop (or of serial code under
/// [`SERIAL_LOOP`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct LoopProf {
    pub(crate) class_counts: [u64; NCLASS],
    pub(crate) iters: u64,
    pub(crate) iter_hist: Pow2Hist,
    pub(crate) wall_ns: u64,
}

impl LoopProf {
    fn default_hist() -> LoopProf {
        LoopProf {
            class_counts: [0; NCLASS],
            iters: 0,
            iter_hist: Pow2Hist::new(),
            wall_ns: 0,
        }
    }

    fn merge(&mut self, other: &LoopProf) {
        for (s, o) in self.class_counts.iter_mut().zip(other.class_counts.iter()) {
            *s += *o;
        }
        self.iters += other.iters;
        self.iter_hist.merge(&other.iter_hist);
        self.wall_ns += other.wall_ns;
    }
}

/// Per-thread profiler state: a flat pending-count array for the loop
/// currently executing (the hot path touches only this) plus the map it
/// flushes into on loop switches. Boxed into `ThreadCtx` so the disabled
/// case costs one null check per instruction.
#[derive(Debug)]
pub(crate) struct ProfState {
    cur: u32,
    pending: [u64; NCLASS],
    per_loop: HashMap<u32, LoopProf>,
}

impl ProfState {
    pub(crate) fn new() -> ProfState {
        ProfState {
            cur: SERIAL_LOOP,
            pending: [0; NCLASS],
            per_loop: HashMap::new(),
        }
    }

    /// The hot-path hook: charge one retired instruction.
    #[inline]
    pub(crate) fn tick(&mut self, class: OpClass) {
        self.pending[class as usize] += 1;
    }

    fn flush_pending(&mut self) {
        if self.pending.iter().all(|&c| c == 0) {
            return;
        }
        let entry = self
            .per_loop
            .entry(self.cur)
            .or_insert_with(LoopProf::default_hist);
        for (e, p) in entry.class_counts.iter_mut().zip(self.pending.iter()) {
            *e += *p;
        }
        self.pending = [0; NCLASS];
    }

    /// Switches attribution to `loop_id`, returning the previous loop for
    /// the caller to restore on exit (loops nest).
    pub(crate) fn enter_loop(&mut self, loop_id: u32) -> u32 {
        self.flush_pending();
        std::mem::replace(&mut self.cur, loop_id)
    }

    /// Restores attribution to `prev` (the value `enter_loop` returned).
    pub(crate) fn exit_loop(&mut self, prev: u32) {
        self.flush_pending();
        self.cur = prev;
    }

    /// Records one finished iteration of the current loop costing
    /// `instructions` retired instructions.
    #[inline]
    pub(crate) fn record_iter(&mut self, instructions: u64) {
        let entry = self
            .per_loop
            .entry(self.cur)
            .or_insert_with(LoopProf::default_hist);
        entry.iters += 1;
        entry.iter_hist.record(instructions);
    }

    /// Adds `wall_ns` to the current loop (master only, once per dynamic
    /// loop entry).
    pub(crate) fn add_wall(&mut self, wall_ns: u64) {
        let entry = self
            .per_loop
            .entry(self.cur)
            .or_insert_with(LoopProf::default_hist);
        entry.wall_ns += wall_ns;
    }

    /// Merges everything accumulated so far into the VM-wide map and
    /// resets (called at dispatch end, next to the counter flush).
    pub(crate) fn flush_into(&mut self, global: &mut HashMap<u32, LoopProf>) {
        self.flush_pending();
        for (id, prof) in self.per_loop.drain() {
            global
                .entry(id)
                .or_insert_with(LoopProf::default_hist)
                .merge(&prof);
        }
    }
}

/// One loop's profile as surfaced to tools (`Vm::opcode_profile`).
#[derive(Debug, Clone)]
pub struct LoopProfile {
    /// Candidate loop id, or [`SERIAL_LOOP`] for serial code.
    pub loop_id: u32,
    /// Wall time the master observed across this loop's dynamic entries
    /// (0 for the serial bucket — its wall is the rest of the run).
    pub wall_ns: u64,
    /// Iterations executed (summed over workers).
    pub iters: u64,
    /// Retired instructions per [`OpClass`] (index by `OpClass as usize`).
    pub class_counts: [u64; NCLASS],
    /// Distribution of per-iteration instruction costs.
    pub iter_hist: Pow2Hist,
}

impl LoopProfile {
    /// Total retired instructions across all classes.
    pub fn total_instructions(&self) -> u64 {
        self.class_counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_hist_buckets_and_percentiles() {
        let mut h = Pow2Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        assert_eq!(h.percentile(0.0), 0);
        // 4th of 8 values is 3 -> bucket of 2..=3 -> upper bound 3.
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(1.0), 1023);
    }

    #[test]
    fn pow2_hist_merge_matches_combined() {
        let mut a = Pow2Hist::new();
        let mut b = Pow2Hist::new();
        let mut c = Pow2Hist::new();
        for v in [5, 17, 90] {
            a.record(v);
            c.record(v);
        }
        for v in [2, 300] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn prof_state_attributes_by_loop_and_nests() {
        let mut p = ProfState::new();
        p.tick(OpClass::Alu); // serial
        let prev = p.enter_loop(3);
        p.tick(OpClass::Mem);
        p.tick(OpClass::Mem);
        let inner_prev = p.enter_loop(4);
        p.tick(OpClass::Sync);
        p.exit_loop(inner_prev);
        p.tick(OpClass::Mem);
        p.record_iter(4);
        p.exit_loop(prev);
        let mut global = HashMap::new();
        p.flush_into(&mut global);
        assert_eq!(global[&SERIAL_LOOP].class_counts[OpClass::Alu as usize], 1);
        assert_eq!(global[&3].class_counts[OpClass::Mem as usize], 3);
        assert_eq!(global[&3].iters, 1);
        assert_eq!(global[&4].class_counts[OpClass::Sync as usize], 1);
    }
}
