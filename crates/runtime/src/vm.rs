//! The bytecode interpreter.
//!
//! One [`Vm`] owns the shared memory, heap and compiled program; each OS
//! thread executing inside it owns a [`ThreadCtx`] (operand stack, call
//! stack, stack region, counters). The master thread runs `main`; parallel
//! loop regions are driven by the executor in [`crate::exec`].

use crate::alloc::HeapContention;
use crate::backend::{BackendKind, ExecBackend, RegBackend, StackBackend};
use crate::mem::{sign_extend, Heap, SharedMem};
use crate::observer::Observer;
use crate::pool::{DoallSchedule, PoolState, PoolStats, ThreadMode};
use crate::privatize::PrivCopy;
use crate::prof::{class_of, LoopProf, LoopProfile, ProfState};
use crate::tracebuf::{EventBuf, EventKind, TraceEvent, TraceSink};
use dse_ir::bytecode::*;
use dse_ir::sites::{AccessKind, NO_SITE};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// A value on the operand stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer or pointer.
    I(i64),
    /// Float.
    F(f64),
}

impl Value {
    /// The integer payload, or `None` if the value is a float.
    ///
    /// Int/float confusion indicates a lowering bug; the VM surfaces it as
    /// a *trap* (`type confusion`), never a panic — a bad request must not
    /// take down a long-running `dsed` worker or poison the VM's mutexes.
    pub fn as_i(self) -> Option<i64> {
        match self {
            Value::I(v) => Some(v),
            Value::F(_) => None,
        }
    }

    /// The float payload, or `None` if the value is an integer (see
    /// [`Value::as_i`]).
    pub fn as_f(self) -> Option<f64> {
        match self {
            Value::F(v) => Some(v),
            Value::I(_) => None,
        }
    }

    /// The raw bit pattern of the payload (the register backend's untagged
    /// representation: floats as IEEE bits, integers as two's complement).
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I(v) => v as u64,
            Value::F(v) => v.to_bits(),
        }
    }
}

/// Locks a mutex, recovering the data if a previous holder panicked. All
/// VM-owned locks guard plain data (output vectors, maps) whose invariants
/// hold between mutations, so a poisoned lock is safe to clear — and a
/// panicking worker must not make every later request on a shared `Vm` or
/// daemon fail with a `PoisonError`.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-thread cost counters, in the categories of the paper's Figure 12.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Ordinary instructions executed ("work").
    pub work: u64,
    /// Spin iterations inside `Wait`/post ordering and scheduler barriers
    /// (the paper's `do_wait` + `cpu_relax` bucket).
    pub wait_spins: u64,
    /// Spin-to-yield transitions: waits that exhausted their spin budget
    /// and fell back to `yield_now` (each yield counts once).
    pub wait_yields: u64,
    /// `Wait`/`Post` instructions executed (synchronization calls).
    pub sync_ops: u64,
    /// Runtime-privatization address translations performed.
    pub localize_calls: u64,
    /// Bytes copied in/out by runtime privatization.
    pub localize_copied_bytes: u64,
    /// Redirected private *direct* accesses executed (fused `v[tid]`
    /// addressing). Used by the baseline cost model that charges SpiceC's
    /// full access monitoring.
    pub private_direct: u64,
}

impl Counters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.work += other.work;
        self.wait_spins += other.wait_spins;
        self.wait_yields += other.wait_yields;
        self.sync_ops += other.sync_ops;
        self.localize_calls += other.localize_calls;
        self.localize_copied_bytes += other.localize_copied_bytes;
        self.private_direct += other.private_direct;
    }
}

/// A worker's lock-free counter slot: workers add their dispatch-local
/// deltas at loop end, the master reads a snapshot at report time. One
/// cache line per worker so flushes do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct AtomicCounters {
    work: AtomicU64,
    wait_spins: AtomicU64,
    wait_yields: AtomicU64,
    sync_ops: AtomicU64,
    localize_calls: AtomicU64,
    localize_copied_bytes: AtomicU64,
    private_direct: AtomicU64,
}

impl AtomicCounters {
    pub(crate) fn add(&self, c: &Counters) {
        self.work.fetch_add(c.work, Ordering::Relaxed);
        self.wait_spins.fetch_add(c.wait_spins, Ordering::Relaxed);
        self.wait_yields.fetch_add(c.wait_yields, Ordering::Relaxed);
        self.sync_ops.fetch_add(c.sync_ops, Ordering::Relaxed);
        self.localize_calls
            .fetch_add(c.localize_calls, Ordering::Relaxed);
        self.localize_copied_bytes
            .fetch_add(c.localize_copied_bytes, Ordering::Relaxed);
        self.private_direct
            .fetch_add(c.private_direct, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Counters {
        Counters {
            work: self.work.load(Ordering::Relaxed),
            wait_spins: self.wait_spins.load(Ordering::Relaxed),
            wait_yields: self.wait_yields.load(Ordering::Relaxed),
            sync_ops: self.sync_ops.load(Ordering::Relaxed),
            localize_calls: self.localize_calls.load(Ordering::Relaxed),
            localize_copied_bytes: self.localize_copied_bytes.load(Ordering::Relaxed),
            private_direct: self.private_direct.load(Ordering::Relaxed),
        }
    }
}

/// A VM trap (runtime error) with the program counter where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Human-readable description.
    pub msg: String,
}

impl VmError {
    pub(crate) fn new(pc: usize, msg: impl Into<String>) -> Self {
        VmError {
            pc: pc as u32,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm trap at pc {}: {}", self.pc, self.msg)
    }
}

impl std::error::Error for VmError {}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Total memory size in bytes.
    pub mem_bytes: u64,
    /// Per-thread stack region size in bytes.
    pub stack_bytes: u64,
    /// Number of worker threads N (thread 0 is the master); serial runs
    /// use one. Expanded programs must be run with the same N they were
    /// transformed for.
    pub nthreads: u32,
    /// Host-provided integer inputs, read by `in_long(i)`.
    pub inputs_int: Vec<i64>,
    /// Host-provided float inputs, read by `in_float(i)`.
    pub inputs_float: Vec<f64>,
    /// Trap after this many instructions on any one thread (runaway guard).
    pub max_instructions: u64,
    /// Whether runtime privatization commits thread-local copies back to the
    /// shared space at loop end (SpiceC-style).
    pub priv_commit: bool,
    /// Record per-iteration cost segments of parallel-lowered loops during
    /// single-threaded execution, for the multicore schedule simulator
    /// (the host may not have 8 physical cores; the paper's Opteron did).
    pub record_iteration_costs: bool,
    /// Worker-thread acquisition: persistent pool (default) or fresh
    /// scoped threads per loop (the dispatch-latency baseline).
    pub thread_mode: ThreadMode,
    /// Instruction encoding/interpreter the run executes with: the
    /// reference stack interpreter or the register backend with threaded
    /// dispatch (see [`crate::backend`]). Defaults from the
    /// `DSE_EXEC_BACKEND` environment variable (`stack`/`reg`), falling
    /// back to `Stack`.
    pub backend: BackendKind,
    /// DOALL iteration division: work stealing (default) or the static
    /// one-chunk-per-worker split (the imbalance baseline).
    pub doall_schedule: DoallSchedule,
    /// Record runtime trace events (dispatch/steal/park/wake, loop spans,
    /// DOACROSS wait/post, allocator slow paths) into per-worker ring
    /// buffers. Always compiled in, off by default; see
    /// [`crate::tracebuf`].
    pub trace: bool,
    /// Capacity of each worker's trace ring (events). A full ring
    /// overwrites its oldest event and counts the drop.
    pub trace_capacity: usize,
    /// Attribute every retired instruction to (loop id, opcode class) and
    /// record per-iteration cost histograms; see [`crate::prof`].
    pub opcode_profile: bool,
    /// Refuse to execute a register translation that has not been marked
    /// verified by the backend verifier (`dse-verify`'s `DSE010`–`DSE015`
    /// passes). Only meaningful with [`VmConfig::backend`] `Reg` and a
    /// pre-translated module; translations made by the VM itself have no
    /// verification channel and are rejected outright under strict.
    pub strict: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mem_bytes: 64 << 20,
            stack_bytes: 1 << 20,
            nthreads: 1,
            inputs_int: Vec::new(),
            inputs_float: Vec::new(),
            max_instructions: u64::MAX,
            priv_commit: true,
            record_iteration_costs: false,
            thread_mode: ThreadMode::Pool,
            backend: BackendKind::from_env(),
            doall_schedule: DoallSchedule::Stealing,
            trace: false,
            trace_capacity: 8192,
            opcode_profile: false,
            strict: false,
        }
    }
}

/// Cross-iteration synchronization state for one executing parallel loop.
#[derive(Debug)]
pub(crate) struct LoopSync {
    /// Next iteration to hand out (DOACROSS dynamic scheduling).
    pub next: AtomicI64,
    /// All iterations `< done` have posted their ordered section.
    pub done: AtomicI64,
    /// Set when any worker trapped; others abandon promptly.
    pub abort: AtomicBool,
}

impl LoopSync {
    pub(crate) fn new(lo: i64) -> Self {
        LoopSync {
            next: AtomicI64::new(lo),
            done: AtomicI64::new(lo),
            abort: AtomicBool::new(false),
        }
    }
}

/// Spin iterations before a waiting worker starts yielding its timeslice.
/// Short waits (the common DOACROSS case: the predecessor is one ordered
/// window away) stay on the cheap `spin_loop` hint; long waits — more
/// workers than cores, or a slow predecessor — back off to `yield_now` so
/// the runnable thread that will unblock us gets the CPU.
const SPIN_BEFORE_YIELD: u64 = 128;

/// Adaptive spin-then-yield backoff for the DOACROSS `Wait`/post loops.
/// One `step` call per failed re-check of the condition; counters record
/// both the raw spins and each spin-to-yield transition.
pub(crate) struct Backoff {
    spins: u64,
}

impl Backoff {
    pub(crate) fn new() -> Self {
        Backoff { spins: 0 }
    }

    pub(crate) fn step(&mut self, counters: &mut Counters) {
        counters.wait_spins += 1;
        self.spins += 1;
        if self.spins < SPIN_BEFORE_YIELD {
            std::hint::spin_loop();
        } else {
            counters.wait_yields += 1;
            std::thread::yield_now();
        }
    }
}

pub(crate) struct Frame {
    /// Return pc (stack or register pc, per the executing backend); `None`
    /// marks a region/toplevel sentinel.
    pub ret_pc: Option<u32>,
    pub saved_base: u64,
    pub saved_sp: u64,
    /// Caller's register-window base (register backend only; the stack
    /// backend stores the current base and never reads it back).
    pub saved_rbase: usize,
}

/// Per-thread execution state.
pub struct ThreadCtx {
    /// Worker index (0 = master).
    pub tid: u32,
    /// Base of this thread's fixed stack region (`sp` resets here between
    /// pool dispatches).
    pub(crate) stack_base: u64,
    pub(crate) frame_base: u64,
    pub(crate) sp: u64,
    pub(crate) stack_limit: u64,
    pub(crate) ops: Vec<Value>,
    pub(crate) frames: Vec<Frame>,
    pub(crate) iter_stack: Vec<i64>,
    pub(crate) sync_stack: Vec<(u32, Arc<LoopSync>)>,
    /// Instruction counts at the first `Wait` / first `Post` of the current
    /// iteration (cost-trace recording).
    pub(crate) wait_mark: Option<u64>,
    pub(crate) post_mark: Option<u64>,
    pub(crate) posted: bool,
    pub(crate) in_parallel: bool,
    /// Runtime-privatization map: shared allocation base -> private copy.
    pub(crate) priv_map: HashMap<u64, PrivCopy>,
    /// This thread's cost counters.
    pub counters: Counters,
    /// Trace event ring (present iff tracing is on for this run).
    pub(crate) trace: Option<EventBuf>,
    /// Opcode profiler state (present iff profiling is on). Boxed so the
    /// common disabled case is one null check on the dispatch path.
    pub(crate) prof: Option<Box<ProfState>>,
    /// Register file for the register backend (empty under the stack
    /// backend). Grows monotonically; iteration frames reuse it without
    /// clearing.
    pub(crate) regs: Vec<u64>,
    /// Base of the current register window in `regs`.
    pub(crate) reg_base: usize,
}

impl ThreadCtx {
    pub(crate) fn new(tid: u32, stack_base: u64, stack_bytes: u64) -> Self {
        ThreadCtx {
            tid,
            stack_base,
            frame_base: stack_base,
            sp: stack_base,
            stack_limit: stack_base + stack_bytes,
            ops: Vec::with_capacity(64),
            frames: Vec::with_capacity(16),
            iter_stack: Vec::new(),
            sync_stack: Vec::new(),
            wait_mark: None,
            post_mark: None,
            posted: false,
            in_parallel: false,
            priv_map: HashMap::new(),
            counters: Counters::default(),
            trace: None,
            prof: None,
            regs: Vec::new(),
            reg_base: 0,
        }
    }

    /// Records a trace event if tracing is enabled on this context.
    #[inline]
    pub(crate) fn emit(&mut self, ev: TraceEvent) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(ev);
        }
    }

    /// Readies a (fresh or pooled) worker context for a loop dispatch: the
    /// frame pointer adopts the master's frame, the stack pointer rewinds
    /// to this worker's own region, and per-loop execution state is
    /// cleared — a previous dispatch may have ended in a trap with frames
    /// and operands still live. Counters were flushed at the end of the
    /// previous dispatch and the privatization map drained by
    /// `commit_private_copies`, so both carry over empty.
    pub(crate) fn reset_for_dispatch(&mut self, frame_base: u64) {
        self.frame_base = frame_base;
        self.sp = self.stack_base;
        self.ops.clear();
        self.frames.clear();
        self.iter_stack.clear();
        self.sync_stack.clear();
        self.wait_mark = None;
        self.post_mark = None;
        self.posted = false;
        self.in_parallel = true;
        self.reg_base = 0;
        debug_assert!(self.priv_map.is_empty(), "private copies leaked a loop");
    }
}

/// Cost segments of one loop iteration, measured in VM instructions during
/// a single-threaded run of parallel-lowered code. `pre` precedes the
/// DOACROSS ordered window, `window` is inside it, `post` follows it
/// (DOALL iterations are all `pre`). Used by the schedule simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterCost {
    /// Instructions before the ordered window.
    pub pre: u64,
    /// Instructions inside the ordered window.
    pub window: u64,
    /// Instructions after the window.
    pub post: u64,
    /// Runtime-privatization calls during the iteration.
    pub localize_calls: u64,
    /// Bytes copied by runtime privatization during the iteration.
    pub localize_bytes: u64,
    /// Redirected private direct accesses during the iteration.
    pub private_direct: u64,
}

/// Result of running a program to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// `main`'s return value, if it returns one.
    pub return_value: Option<Value>,
    /// Aggregated counters over all threads.
    pub counters: Counters,
    /// Counters broken down by worker index (`per_thread[tid]`), summing
    /// to `counters`. Workers accumulate across every parallel region
    /// they participate in; index 0 is the master thread.
    pub per_thread: Vec<Counters>,
    /// High-water mark of live heap bytes during the run.
    pub peak_heap_bytes: u64,
    /// Allocator contention counters (magazine hits/misses, backend lock
    /// acquisitions, scavenges) accumulated over the run.
    pub heap_contention: HeapContention,
    /// Executor pool counters (all zero for serial or spawn-per-loop runs).
    pub pool: PoolStats,
}

/// The virtual machine: memory, heap, program, and I/O channels.
pub struct Vm {
    pub(crate) program: CompiledProgram,
    pub(crate) config: VmConfig,
    pub(crate) mem: SharedMem,
    pub(crate) heap: Heap,
    stack_region_base: u64,
    pub(crate) outputs_int: Mutex<Vec<i64>>,
    pub(crate) outputs_float: Mutex<Vec<f64>>,
    pub(crate) console: Mutex<String>,
    /// Lock-free per-worker counter slots (`per_thread[tid]`), flushed by
    /// workers at the end of each dispatch. The master's counters live on
    /// its context and merge at report time.
    pub(crate) per_thread: Vec<AtomicCounters>,
    /// Persistent executor pool state (contexts, dispatch condvars,
    /// counters); present when the run is parallel and pool-backed. The
    /// worker *threads* live inside the scope `run` opens.
    pool: Option<PoolState>,
    /// Per loop id: one cost vector per dynamic loop entry (recorded when
    /// [`VmConfig::record_iteration_costs`] is set).
    pub(crate) iter_trace: Mutex<HashMap<u32, Vec<Vec<IterCost>>>>,
    /// Trace event sink (present iff [`VmConfig::trace`]); workers drain
    /// their rings here once per dispatch.
    trace: Option<TraceSink>,
    /// Merged opcode profiles (present iff [`VmConfig::opcode_profile`]);
    /// threads flush their local maps here once per dispatch.
    prof: Option<Mutex<HashMap<u32, LoopProf>>>,
    /// The execution backend every thread dispatches through (stack
    /// reference interpreter, or register interpreter with threaded
    /// dispatch).
    backend: Arc<dyn ExecBackend>,
}

impl Vm {
    /// Creates a VM for `program` with the given configuration, laying out
    /// globals, per-thread stacks and the heap, and applying global
    /// initializers.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the memory is too small for the layout.
    pub fn new(program: CompiledProgram, config: VmConfig) -> Result<Vm, VmError> {
        Vm::build(program, config, None)
    }

    /// Like [`Vm::new`], but executes with the register backend using an
    /// already-translated `reg` module (e.g. from the pipeline's cached
    /// `reglower` phase) instead of translating here. Forces
    /// [`VmConfig::backend`] to [`BackendKind::Reg`].
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the memory is too small for the layout.
    pub fn with_reg(
        program: CompiledProgram,
        reg: Arc<dse_ir::RegProgram>,
        mut config: VmConfig,
    ) -> Result<Vm, VmError> {
        config.backend = BackendKind::Reg;
        Vm::build(program, config, Some(reg))
    }

    fn build(
        program: CompiledProgram,
        config: VmConfig,
        reg: Option<Arc<dse_ir::RegProgram>>,
    ) -> Result<Vm, VmError> {
        assert!(config.nthreads >= 1, "nthreads must be at least 1");
        let backend: Arc<dyn ExecBackend> = match config.backend {
            BackendKind::Stack => Arc::new(StackBackend),
            BackendKind::Reg => {
                let rp = match reg {
                    Some(rp) => rp,
                    None => Arc::new(dse_ir::regcode::translate(&program).map_err(|e| {
                        VmError::new(
                            e.pc as usize,
                            format!("register lowering failed: {}", e.msg),
                        )
                    })?),
                };
                if config.strict && !rp.is_verified() {
                    return Err(VmError::new(
                        0,
                        "DSE010-DSE015: register translation is not verified; run it \
                         through the backend verifier (`dsec check --backend`) before \
                         executing under --strict"
                            .to_string(),
                    ));
                }
                Arc::new(RegBackend::new(rp))
            }
        };
        let globals_end = GLOBAL_BASE + program.globals_size;
        let stacks_base = dse_lang::types::round_up(globals_end, 4096);
        let heap_base = stacks_base + config.nthreads as u64 * config.stack_bytes;
        if heap_base + 4096 > config.mem_bytes {
            return Err(VmError::new(
                0,
                format!(
                    "memory too small: need > {} bytes for globals and stacks",
                    heap_base
                ),
            ));
        }
        let mem = SharedMem::new(config.mem_bytes);
        let heap = Heap::new(heap_base, config.mem_bytes);
        for &(addr, init) in &program.global_inits {
            match init {
                InitValue::Int(v, w) => mem.write(addr, w as u32, v as u64),
                InitValue::Float(v) => mem.write(addr, 8, v.to_bits()),
            }
        }
        let nthreads = config.nthreads as usize;
        let pool = (config.nthreads > 1 && config.thread_mode == ThreadMode::Pool)
            .then(|| PoolState::new(config.nthreads, stacks_base, config.stack_bytes));
        let trace = config.trace.then(TraceSink::new);
        if let Some(sink) = &trace {
            heap.enable_trace(sink.epoch());
        }
        let prof = config.opcode_profile.then(|| Mutex::new(HashMap::new()));
        Ok(Vm {
            program,
            config,
            mem,
            heap,
            stack_region_base: stacks_base,
            outputs_int: Mutex::new(Vec::new()),
            outputs_float: Mutex::new(Vec::new()),
            console: Mutex::new(String::new()),
            per_thread: (0..nthreads).map(|_| AtomicCounters::default()).collect(),
            pool,
            iter_trace: Mutex::new(HashMap::new()),
            trace,
            prof,
            backend,
        })
    }

    /// Which execution backend this VM dispatches through.
    pub fn backend_kind(&self) -> BackendKind {
        self.config.backend
    }

    /// The executor pool state, when this run is pool-backed.
    pub(crate) fn pool(&self) -> Option<&PoolState> {
        self.pool.as_ref()
    }

    /// The trace sink, when tracing is enabled.
    pub(crate) fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// The instant trace timestamps are measured from (`Vm::new`), when
    /// tracing is enabled — lets drivers align the runtime trace with
    /// spans measured on other epochs (e.g. pipeline phases).
    pub fn trace_epoch(&self) -> Option<std::time::Instant> {
        self.trace.as_ref().map(TraceSink::epoch)
    }

    /// Gives `ctx` its trace ring and profiler state if the respective
    /// flags are on and it does not have them yet (contexts are created in
    /// several places that do not see the config).
    pub(crate) fn arm_instruments(&self, ctx: &mut ThreadCtx) {
        if self.trace.is_some() && ctx.trace.is_none() {
            ctx.trace = Some(EventBuf::new(self.config.trace_capacity));
        }
        if self.prof.is_some() && ctx.prof.is_none() {
            ctx.prof = Some(Box::new(ProfState::new()));
        }
    }

    /// Drains `ctx`'s trace ring into the sink and its profile map into
    /// the merged map — once per dispatch, next to the counter flush.
    pub(crate) fn drain_instruments(&self, ctx: &mut ThreadCtx) {
        if let (Some(sink), Some(buf)) = (&self.trace, ctx.trace.as_mut()) {
            sink.absorb(buf);
        }
        if let (Some(map), Some(p)) = (&self.prof, ctx.prof.as_deref_mut()) {
            p.flush_into(&mut lock_clean(map));
        }
    }

    /// Adds a worker's dispatch-local counter deltas into its lock-free
    /// slot and resets the context's accumulator for the next dispatch.
    pub(crate) fn flush_worker_counters(&self, wid: u32, ctx: &mut ThreadCtx) {
        self.per_thread[wid as usize].add(&ctx.counters);
        ctx.counters = Counters::default();
    }

    /// The compiled program being executed.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Memory layout facts needed by observers (stack/heap classification).
    pub fn layout(&self) -> crate::observer::LayoutInfo {
        crate::observer::LayoutInfo {
            master_stack: (
                self.stack_base_of(0),
                self.stack_base_of(0) + self.config.stack_bytes,
            ),
            heap_base: self.heap.base(),
        }
    }

    /// Stack region base address of worker `tid`.
    pub(crate) fn stack_base_of(&self, tid: u32) -> u64 {
        self.stack_region_base + tid as u64 * self.config.stack_bytes
    }

    /// Runs `main` to completion with no observer.
    ///
    /// # Errors
    ///
    /// Propagates the first VM trap from any thread.
    pub fn run(&mut self) -> Result<RunReport, VmError> {
        self.run_with_observer(&mut crate::observer::NullObserver)
    }

    /// Runs `main` to completion, reporting accesses/loop events to `obs`
    /// (serial portions only; parallel regions run unobserved).
    ///
    /// # Errors
    ///
    /// Propagates the first VM trap from any thread.
    pub fn run_with_observer(&mut self, obs: &mut dyn Observer) -> Result<RunReport, VmError> {
        // The master is pool worker 0; pin its allocator front-end shard to
        // match (pool workers pin theirs on thread start), so each worker's
        // magazine cache stays hot across every loop of the run.
        crate::alloc::pin_front_shard(0);
        let mut ctx = ThreadCtx::new(0, self.stack_base_of(0), self.config.stack_bytes);
        self.arm_instruments(&mut ctx);
        let main = self.program.main;
        let entry = self.program.func(main).entry;
        let fsize = self.program.func(main).frame_size as u64;
        ctx.frames.push(Frame {
            ret_pc: None,
            saved_base: ctx.frame_base,
            saved_sp: ctx.sp,
            saved_rbase: ctx.reg_base,
        });
        ctx.frame_base = ctx.sp;
        ctx.sp += fsize;
        self.mem.zero(ctx.frame_base, fsize);
        let this: &Vm = self;
        let ret = match &this.pool {
            // Pool-backed run: one thread scope for the whole program.
            // Workers park between loops; the shutdown guard releases them
            // (so the scope can join) whether `main` returns or traps. The
            // pre-spawn epoch snapshot guarantees a late-starting worker
            // still runs a job dispatched before it first parked.
            Some(pool) => {
                let epoch0 = pool.open();
                std::thread::scope(|scope| {
                    let _guard = pool.guard();
                    for wid in 1..=pool.nworkers() {
                        scope.spawn(move || crate::pool::worker_entry(this, wid, epoch0));
                    }
                    this.exec(&mut ctx, entry, obs)
                })
            }
            None => this.exec(&mut ctx, entry, obs),
        };
        // Drain the master's instruments (and the allocator's slow-path
        // events) even when the run trapped, so partial traces survive.
        self.drain_instruments(&mut ctx);
        if let Some(sink) = &self.trace {
            for ev in self.heap.take_trace() {
                sink.push(ev);
            }
        }
        let ret = ret?;
        let mut per_thread: Vec<Counters> = self
            .per_thread
            .iter()
            .map(AtomicCounters::snapshot)
            .collect();
        per_thread[0].merge(&ctx.counters);
        let mut counters = Counters::default();
        for c in &per_thread {
            counters.merge(c);
        }
        Ok(RunReport {
            return_value: ret,
            counters,
            per_thread,
            peak_heap_bytes: self.heap.peak_live_bytes(),
            heap_contention: self.heap.contention(),
            pool: self.pool.as_ref().map(PoolState::stats).unwrap_or_default(),
        })
    }

    /// Per-iteration cost traces recorded under
    /// [`VmConfig::record_iteration_costs`]: for each candidate loop id,
    /// one vector of iteration costs per dynamic entry of the loop.
    pub fn iteration_costs(&self) -> HashMap<u32, Vec<Vec<IterCost>>> {
        lock_clean(&self.iter_trace).clone()
    }

    /// Takes the run's trace: events sorted by start time, plus the total
    /// count of events lost to ring overwrites. Empty when
    /// [`VmConfig::trace`] was off. Call after [`Vm::run`].
    pub fn take_trace(&self) -> (Vec<TraceEvent>, u64) {
        match &self.trace {
            Some(sink) => sink.take(),
            None => (Vec::new(), 0),
        }
    }

    /// The merged opcode profile, hottest loop (by wall time, then by
    /// retired instructions) first. Empty when
    /// [`VmConfig::opcode_profile`] was off. Call after [`Vm::run`].
    pub fn opcode_profile(&self) -> Vec<LoopProfile> {
        let Some(map) = &self.prof else {
            return Vec::new();
        };
        let map = lock_clean(map);
        let mut out: Vec<LoopProfile> = map
            .iter()
            .map(|(&loop_id, p)| LoopProfile {
                loop_id,
                wall_ns: p.wall_ns,
                iters: p.iters,
                class_counts: p.class_counts,
                iter_hist: p.iter_hist.clone(),
            })
            .collect();
        out.sort_by(|a, b| {
            (b.wall_ns, b.total_instructions(), a.loop_id).cmp(&(
                a.wall_ns,
                a.total_instructions(),
                b.loop_id,
            ))
        });
        out
    }

    /// Integer outputs produced via `out_long`.
    pub fn outputs_int(&self) -> Vec<i64> {
        lock_clean(&self.outputs_int).clone()
    }

    /// Float outputs produced via `out_float`.
    pub fn outputs_float(&self) -> Vec<f64> {
        lock_clean(&self.outputs_float).clone()
    }

    /// Console text produced via `print_long`/`print_float`.
    pub fn console(&self) -> String {
        lock_clean(&self.console).clone()
    }

    /// Executes code starting at stack-bytecode pc `entry` until the
    /// current sentinel frame returns, dispatching through the configured
    /// [`ExecBackend`]. Returns the `main`-style return value if one is
    /// produced.
    pub(crate) fn exec(
        &self,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, VmError> {
        // No Arc::clone here: this runs once per loop iteration, and a
        // refcount bump is a contended atomic RMW across all workers.
        self.backend.exec(self, ctx, entry, obs)
    }

    /// The reference stack interpreter: executes stack bytecode starting
    /// at `entry` until the current sentinel frame returns.
    pub(crate) fn exec_stack(
        &self,
        ctx: &mut ThreadCtx,
        entry: u32,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, VmError> {
        let code = &self.program.code;
        let mut pc = entry as usize;
        macro_rules! trap {
            ($($arg:tt)*) => { return Err(VmError::new(pc, format!($($arg)*))) };
        }
        macro_rules! pop {
            () => {
                match ctx.ops.pop() {
                    Some(v) => v,
                    None => trap!("operand stack underflow"),
                }
            };
        }
        macro_rules! pop_i {
            () => {
                match pop!() {
                    Value::I(v) => v,
                    Value::F(_) => trap!("type confusion: expected integer"),
                }
            };
        }
        macro_rules! pop_f {
            () => {
                match pop!() {
                    Value::F(v) => v,
                    Value::I(_) => trap!("type confusion: expected float"),
                }
            };
        }
        loop {
            ctx.counters.work += 1;
            if ctx.counters.work > self.config.max_instructions {
                trap!("instruction budget exceeded");
            }
            let instr = code[pc];
            // Attributing profiler: one null check when disabled, one
            // array increment on thread-local state when enabled.
            if let Some(p) = ctx.prof.as_deref_mut() {
                p.tick(class_of(&instr));
            }
            match instr {
                Instr::PushI(v) => {
                    ctx.ops.push(Value::I(v));
                    pc += 1;
                }
                Instr::PushF(v) => {
                    ctx.ops.push(Value::F(v));
                    pc += 1;
                }
                Instr::Dup => {
                    let v = *match ctx.ops.last() {
                        Some(v) => v,
                        None => trap!("operand stack underflow"),
                    };
                    ctx.ops.push(v);
                    pc += 1;
                }
                Instr::Drop => {
                    pop!();
                    pc += 1;
                }
                Instr::Tuck => {
                    let top = pop!();
                    let second = pop!();
                    ctx.ops.push(top);
                    ctx.ops.push(second);
                    ctx.ops.push(top);
                    pc += 1;
                }
                Instr::FrameAddr(off) => {
                    ctx.ops.push(Value::I((ctx.frame_base + off as u64) as i64));
                    pc += 1;
                }
                Instr::GlobalAddr(addr) => {
                    ctx.ops.push(Value::I(addr as i64));
                    pc += 1;
                }
                Instr::TidScaled(k) => {
                    ctx.ops.push(Value::I(ctx.tid as i64 * k));
                    pc += 1;
                }
                Instr::FrameAddrTid { offset, stride } => {
                    ctx.counters.private_direct += 1;
                    let a = ctx.frame_base + offset as u64;
                    ctx.ops.push(Value::I(a as i64 + ctx.tid as i64 * stride));
                    pc += 1;
                }
                Instr::GlobalAddrTid { addr, stride } => {
                    ctx.counters.private_direct += 1;
                    ctx.ops
                        .push(Value::I(addr as i64 + ctx.tid as i64 * stride));
                    pc += 1;
                }
                Instr::TidSpanScaled(z) => {
                    let span = pop_i!();
                    if z == 0 {
                        trap!("TidSpanScaled with zero element size");
                    }
                    let off = ctx.tid as i64 * span / z * z;
                    ctx.ops.push(Value::I(off));
                    pc += 1;
                }
                Instr::IterIdx(depth) => {
                    let n = ctx.iter_stack.len();
                    let d = depth as usize;
                    if d >= n {
                        trap!("IterIdx outside parallel loop body");
                    }
                    ctx.ops.push(Value::I(ctx.iter_stack[n - 1 - d]));
                    pc += 1;
                }
                Instr::Load {
                    width,
                    is_float,
                    site,
                } => {
                    let addr = pop_i!() as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid load of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Load, addr, width as u32, ctx.sp);
                    }
                    let raw = self.mem.read(addr, width as u32);
                    ctx.ops.push(if is_float {
                        Value::F(f64::from_bits(raw))
                    } else {
                        Value::I(sign_extend(raw, width as u32))
                    });
                    pc += 1;
                }
                Instr::Store {
                    width,
                    is_float,
                    site,
                } => {
                    let val = pop!();
                    let addr = pop_i!() as u64;
                    if addr < GLOBAL_BASE || !self.mem.in_bounds(addr, width as u64) {
                        trap!("invalid store of {width} bytes at address {addr}");
                    }
                    if site != NO_SITE {
                        obs.on_access(site, AccessKind::Store, addr, width as u32, ctx.sp);
                    }
                    let raw = match (val, is_float) {
                        (Value::F(f), true) => f.to_bits(),
                        (Value::I(i), false) => i as u64,
                        _ => trap!("type confusion in store"),
                    };
                    self.mem.write(addr, width as u32, raw);
                    pc += 1;
                }
                Instr::MemCpy {
                    size,
                    load_site,
                    store_site,
                } => {
                    let dst = pop_i!() as u64;
                    let src = pop_i!() as u64;
                    let sz = size as u64;
                    if src < GLOBAL_BASE
                        || dst < GLOBAL_BASE
                        || !self.mem.in_bounds(src, sz)
                        || !self.mem.in_bounds(dst, sz)
                    {
                        trap!("invalid memcpy of {size} bytes {src} -> {dst}");
                    }
                    if load_site != NO_SITE {
                        obs.on_access(load_site, AccessKind::Load, src, size, ctx.sp);
                    }
                    if store_site != NO_SITE {
                        obs.on_access(store_site, AccessKind::Store, dst, size, ctx.sp);
                    }
                    self.mem.copy(src, dst, sz);
                    pc += 1;
                }
                Instr::IBin(op) => {
                    let r = pop_i!();
                    let l = pop_i!();
                    let v = match op {
                        IBinOp::Add => l.wrapping_add(r),
                        IBinOp::Sub => l.wrapping_sub(r),
                        IBinOp::Mul => l.wrapping_mul(r),
                        IBinOp::Div => match l.checked_div(r) {
                            Some(v) => v,
                            None => trap!("division by zero or overflow ({l} / {r})"),
                        },
                        IBinOp::Rem => match l.checked_rem(r) {
                            Some(v) => v,
                            None => trap!("remainder by zero or overflow ({l} % {r})"),
                        },
                        IBinOp::And => l & r,
                        IBinOp::Or => l | r,
                        IBinOp::Xor => l ^ r,
                        IBinOp::Shl => l.wrapping_shl(r as u32 & 63),
                        IBinOp::Shr => l.wrapping_shr(r as u32 & 63),
                    };
                    ctx.ops.push(Value::I(v));
                    pc += 1;
                }
                Instr::FBin(op) => {
                    let r = pop_f!();
                    let l = pop_f!();
                    let v = match op {
                        FBinOp::Add => l + r,
                        FBinOp::Sub => l - r,
                        FBinOp::Mul => l * r,
                        FBinOp::Div => l / r,
                    };
                    ctx.ops.push(Value::F(v));
                    pc += 1;
                }
                Instr::ICmp(op) => {
                    let r = pop_i!();
                    let l = pop_i!();
                    ctx.ops.push(Value::I(cmp_result(op, l.cmp(&r)) as i64));
                    pc += 1;
                }
                Instr::FCmp(op) => {
                    let r = pop_f!();
                    let l = pop_f!();
                    let res = match op {
                        CmpOp::Eq => l == r,
                        CmpOp::Ne => l != r,
                        CmpOp::Lt => l < r,
                        CmpOp::Le => l <= r,
                        CmpOp::Gt => l > r,
                        CmpOp::Ge => l >= r,
                    };
                    ctx.ops.push(Value::I(res as i64));
                    pc += 1;
                }
                Instr::INeg => {
                    let v = pop_i!();
                    ctx.ops.push(Value::I(v.wrapping_neg()));
                    pc += 1;
                }
                Instr::FNeg => {
                    let v = pop_f!();
                    ctx.ops.push(Value::F(-v));
                    pc += 1;
                }
                Instr::BNot => {
                    let v = pop_i!();
                    ctx.ops.push(Value::I(!v));
                    pc += 1;
                }
                Instr::LNot => {
                    let v = pop_i!();
                    ctx.ops.push(Value::I((v == 0) as i64));
                    pc += 1;
                }
                Instr::I2F => {
                    let v = pop_i!();
                    ctx.ops.push(Value::F(v as f64));
                    pc += 1;
                }
                Instr::F2I => {
                    let v = pop_f!();
                    ctx.ops.push(Value::I(v as i64));
                    pc += 1;
                }
                Instr::SextTrunc(w) => {
                    let v = pop_i!();
                    ctx.ops.push(Value::I(sign_extend(v as u64, w as u32)));
                    pc += 1;
                }
                Instr::Jump(t) => pc = t as usize,
                Instr::JumpIfZ(t) => {
                    let v = pop_i!();
                    pc = if v == 0 { t as usize } else { pc + 1 };
                }
                Instr::JumpIfNZ(t) => {
                    let v = pop_i!();
                    pc = if v != 0 { t as usize } else { pc + 1 };
                }
                Instr::Call(fi) => {
                    let callee = self.program.func(fi);
                    let nargs = callee.params.len();
                    if ctx.ops.len() < nargs {
                        trap!("operand stack underflow in call");
                    }
                    let new_base = dse_lang::types::round_up(ctx.sp, 8);
                    let new_sp = new_base + callee.frame_size as u64;
                    if new_sp > ctx.stack_limit {
                        trap!("stack overflow calling `{}`", callee.name);
                    }
                    self.mem.zero(new_base, callee.frame_size as u64);
                    // Pop args right-to-left into parameter slots.
                    for pi in (0..nargs).rev() {
                        let (off, kind) = callee.params[pi];
                        let v = pop!();
                        let raw = match (v, kind.is_float) {
                            (Value::F(f), true) => f.to_bits(),
                            (Value::I(i), false) => i as u64,
                            _ => trap!("type confusion in argument {pi}"),
                        };
                        self.mem
                            .write(new_base + off as u64, kind.width as u32, raw);
                    }
                    ctx.frames.push(Frame {
                        ret_pc: Some(pc as u32 + 1),
                        saved_base: ctx.frame_base,
                        saved_sp: ctx.sp,
                        saved_rbase: ctx.reg_base,
                    });
                    ctx.frame_base = new_base;
                    ctx.sp = new_sp;
                    pc = callee.entry as usize;
                }
                Instr::CallBuiltin(b) => {
                    self.call_builtin(b, ctx, pc, obs)?;
                    pc += 1;
                }
                Instr::Ret => {
                    let fr = match ctx.frames.pop() {
                        Some(f) => f,
                        None => trap!("return with empty call stack"),
                    };
                    ctx.frame_base = fr.saved_base;
                    ctx.sp = fr.saved_sp;
                    match fr.ret_pc {
                        Some(t) => pc = t as usize,
                        None => return Ok(ctx.ops.pop()),
                    }
                }
                Instr::LoopMark(ev, id) => {
                    // Begin reports the enclosing frame base (so observers
                    // can locate frame-resident variables such as the
                    // induction slot); IterStart/End report the live sp.
                    let p = match ev {
                        LoopEvent::Begin => ctx.frame_base,
                        _ => ctx.sp,
                    };
                    obs.on_loop(ev, id, p, ctx.counters.work);
                    pc += 1;
                }
                Instr::ParLoop(id) => {
                    let hi = pop_i!();
                    let lo = pop_i!();
                    self.run_par_loop(ctx, id, lo, hi).map_err(|mut e| {
                        if e.pc == u32::MAX {
                            e.pc = pc as u32;
                        }
                        e
                    })?;
                    pc += 1;
                }
                Instr::Wait(_) => {
                    ctx.counters.sync_ops += 1;
                    if ctx.wait_mark.is_none() {
                        ctx.wait_mark = Some(ctx.counters.work);
                    }
                    let my = match ctx.iter_stack.last() {
                        Some(&i) => i,
                        None => trap!("Wait outside iteration"),
                    };
                    let (loop_id, sync) = match ctx.sync_stack.last() {
                        Some((id, s)) => (*id, Arc::clone(s)),
                        None => trap!("Wait outside parallel loop"),
                    };
                    // Trace the whole wait as one span (not per spin).
                    let t0 = match (&self.trace, &ctx.trace) {
                        (Some(sink), Some(_)) => Some(sink.now_ns()),
                        _ => None,
                    };
                    let mut backoff = Backoff::new();
                    while sync.done.load(std::sync::atomic::Ordering::Acquire) < my {
                        if sync.abort.load(std::sync::atomic::Ordering::Relaxed) {
                            trap!("aborted while waiting (another worker trapped)");
                        }
                        backoff.step(&mut ctx.counters);
                    }
                    if let (Some(t0), Some(sink)) = (t0, &self.trace) {
                        let ev = TraceEvent {
                            ts_ns: t0,
                            dur_ns: sink.now_ns().saturating_sub(t0),
                            a: loop_id as u64,
                            b: my as u64,
                            tid: ctx.tid,
                            kind: EventKind::WaitSpan,
                        };
                        ctx.emit(ev);
                    }
                    pc += 1;
                }
                Instr::Post(_) => {
                    ctx.counters.sync_ops += 1;
                    if ctx.post_mark.is_none() {
                        ctx.post_mark = Some(ctx.counters.work);
                    }
                    let my = match ctx.iter_stack.last() {
                        Some(&i) => i,
                        None => trap!("Post outside iteration"),
                    };
                    let (loop_id, sync) = match ctx.sync_stack.last() {
                        Some((id, s)) => (*id, Arc::clone(s)),
                        None => trap!("Post outside parallel loop"),
                    };
                    self.post_iteration(ctx, &sync, my);
                    if let (Some(sink), true) = (&self.trace, ctx.trace.is_some()) {
                        let ev = TraceEvent {
                            ts_ns: sink.now_ns(),
                            dur_ns: 0,
                            a: loop_id as u64,
                            b: my as u64,
                            tid: ctx.tid,
                            kind: EventKind::Post,
                        };
                        ctx.emit(ev);
                    }
                    pc += 1;
                }
                Instr::Localize { site: _ } => {
                    let addr = pop_i!() as u64;
                    let translated = self.localize(ctx, addr, pc)?;
                    ctx.ops.push(Value::I(translated as i64));
                    pc += 1;
                }
                Instr::Halt => return Ok(ctx.ops.pop()),
            }
        }
    }

    /// Posts the ordered section of iteration `my` (idempotent per
    /// iteration via `ctx.posted`).
    pub(crate) fn post_iteration(&self, ctx: &mut ThreadCtx, sync: &LoopSync, my: i64) {
        if ctx.posted {
            return;
        }
        let mut backoff = Backoff::new();
        while sync.done.load(std::sync::atomic::Ordering::Acquire) < my {
            if sync.abort.load(std::sync::atomic::Ordering::Relaxed) {
                // A peer trapped and will never post; bail without posting
                // (the worker notices the abort at its next boundary).
                return;
            }
            backoff.step(&mut ctx.counters);
        }
        sync.done
            .store(my + 1, std::sync::atomic::Ordering::Release);
        ctx.posted = true;
    }

    pub(crate) fn call_builtin(
        &self,
        b: Builtin,
        ctx: &mut ThreadCtx,
        pc: usize,
        obs: &mut dyn Observer,
    ) -> Result<(), VmError> {
        macro_rules! trap {
            ($($arg:tt)*) => { return Err(VmError::new(pc, format!($($arg)*))) };
        }
        macro_rules! pop_i {
            () => {
                match ctx.ops.pop() {
                    Some(Value::I(v)) => v,
                    Some(Value::F(_)) => trap!("type confusion: expected integer"),
                    None => trap!("operand stack underflow"),
                }
            };
        }
        macro_rules! pop_f {
            () => {
                match ctx.ops.pop() {
                    Some(Value::F(v)) => v,
                    Some(Value::I(_)) => trap!("type confusion: expected float"),
                    None => trap!("operand stack underflow"),
                }
            };
        }
        match b {
            Builtin::Malloc => {
                let n = pop_i!();
                if n < 0 {
                    trap!("malloc with negative size {n}");
                }
                let a = match self.heap.alloc(n as u64) {
                    Some(a) => a,
                    None => trap!("out of memory allocating {n} bytes"),
                };
                self.mem.zero(a.base, a.size.max(1));
                obs.on_alloc(a, pc as u32);
                ctx.ops.push(Value::I(a.base as i64));
            }
            Builtin::Calloc => {
                let m = pop_i!();
                let n = pop_i!();
                // Check signs before multiplying: negative * negative is a
                // positive product, so a post-multiplication `t >= 0` filter
                // would happily allocate for calloc(-2, -3).
                if n < 0 || m < 0 {
                    trap!("calloc with negative operand ({n}, {m})");
                }
                let total = match n.checked_mul(m) {
                    Some(t) => t as u64,
                    None => trap!("calloc size overflow ({n} * {m})"),
                };
                let a = match self.heap.alloc(total) {
                    Some(a) => a,
                    None => trap!("out of memory allocating {total} bytes"),
                };
                self.mem.zero(a.base, a.size.max(1));
                obs.on_alloc(a, pc as u32);
                ctx.ops.push(Value::I(a.base as i64));
            }
            Builtin::Realloc => {
                let n = pop_i!();
                let p = pop_i!() as u64;
                if n < 0 {
                    trap!("realloc with negative size {n}");
                }
                if p == 0 {
                    let a = match self.heap.alloc(n as u64) {
                        Some(a) => a,
                        None => trap!("out of memory allocating {n} bytes"),
                    };
                    self.mem.zero(a.base, a.size.max(1));
                    obs.on_alloc(a, pc as u32);
                    ctx.ops.push(Value::I(a.base as i64));
                    return Ok(());
                }
                let old = match self.heap.at_base(p) {
                    Some(a) => a,
                    None => trap!("realloc of invalid pointer {p}"),
                };
                let a = match self.heap.alloc(n as u64) {
                    Some(a) => a,
                    None => trap!("out of memory allocating {n} bytes"),
                };
                self.mem.zero(a.base, a.size.max(1));
                self.mem.copy(old.base, a.base, old.size.min(n as u64));
                self.heap.free(old.base);
                obs.on_free(old);
                obs.on_alloc(a, pc as u32);
                ctx.ops.push(Value::I(a.base as i64));
            }
            Builtin::ReallocExpanded => {
                let old_span = pop_i!();
                let n = pop_i!();
                let p = pop_i!() as u64;
                if n < 0 || old_span < 0 {
                    trap!("__realloc_expanded with negative size");
                }
                let factor = self.config.nthreads as u64;
                if p == 0 {
                    let a = match self.heap.alloc(n as u64 * factor) {
                        Some(a) => a,
                        None => trap!("out of memory in expanded realloc"),
                    };
                    self.mem.zero(a.base, a.size.max(1));
                    obs.on_alloc(a, pc as u32);
                    ctx.ops.push(Value::I(a.base as i64));
                    return Ok(());
                }
                let old = match self.heap.at_base(p) {
                    Some(a) => a,
                    None => trap!("expanded realloc of invalid pointer {p}"),
                };
                let a = match self.heap.alloc(n as u64 * factor) {
                    Some(a) => a,
                    None => trap!("out of memory in expanded realloc"),
                };
                self.mem.zero(a.base, a.size.max(1));
                // Move each thread's copy to its new position. A replica
                // whose span runs past the recorded allocation keeps its
                // in-bounds prefix (the old code dropped the whole copy —
                // silent data loss for the last thread whenever
                // `old_span * nthreads` exceeded the allocation); a replica
                // starting entirely outside the allocation means the span
                // metadata is inconsistent with the allocation, so trap.
                let keep = (old_span as u64).min(n as u64);
                let old_end = old.base + old.size;
                for t in 0..factor {
                    let src = old.base + t * old_span as u64;
                    let dst = a.base + t * n as u64;
                    if src >= old_end {
                        if keep > 0 {
                            trap!(
                                "__realloc_expanded: replica {t} at offset {} lies outside \
                                 the old allocation of {} bytes (inconsistent span {old_span})",
                                t * old_span as u64,
                                old.size
                            );
                        }
                        continue;
                    }
                    let avail = old_end - src;
                    self.mem.copy(src, dst, keep.min(avail));
                }
                self.heap.free(old.base);
                obs.on_free(old);
                obs.on_alloc(a, pc as u32);
                ctx.ops.push(Value::I(a.base as i64));
            }
            Builtin::Free => {
                let p = pop_i!() as u64;
                if p != 0 {
                    match self.heap.free(p) {
                        Some(a) => obs.on_free(a),
                        None => trap!("free of invalid pointer {p}"),
                    }
                }
            }
            Builtin::InLong => {
                let i = pop_i!();
                let v = match usize::try_from(i)
                    .ok()
                    .and_then(|i| self.config.inputs_int.get(i))
                {
                    Some(&v) => v,
                    None => trap!("in_long({i}) out of range"),
                };
                ctx.ops.push(Value::I(v));
            }
            Builtin::InFloat => {
                let i = pop_i!();
                let v = match usize::try_from(i)
                    .ok()
                    .and_then(|i| self.config.inputs_float.get(i))
                {
                    Some(&v) => v,
                    None => trap!("in_float({i}) out of range"),
                };
                ctx.ops.push(Value::F(v));
            }
            Builtin::InLen => {
                ctx.ops.push(Value::I(self.config.inputs_int.len() as i64));
            }
            Builtin::OutLong => {
                let v = pop_i!();
                lock_clean(&self.outputs_int).push(v);
            }
            Builtin::OutFloat => {
                let v = pop_f!();
                lock_clean(&self.outputs_float).push(v);
            }
            Builtin::PrintLong => {
                let v = pop_i!();
                use std::fmt::Write as _;
                let _ = writeln!(lock_clean(&self.console), "{v}");
            }
            Builtin::PrintFloat => {
                let v = pop_f!();
                use std::fmt::Write as _;
                let _ = writeln!(lock_clean(&self.console), "{v}");
            }
            Builtin::Fsqrt => {
                let v = pop_f!();
                ctx.ops.push(Value::F(v.sqrt()));
            }
            Builtin::Fabs => {
                let v = pop_f!();
                ctx.ops.push(Value::F(v.abs()));
            }
            Builtin::MemCpy => {
                let n = pop_i!();
                let src = pop_i!() as u64;
                let dst = pop_i!() as u64;
                if n < 0 {
                    trap!("__memcpy with negative length {n}");
                }
                let n = n as u64;
                if src < GLOBAL_BASE
                    || dst < GLOBAL_BASE
                    || !self.mem.in_bounds(src, n)
                    || !self.mem.in_bounds(dst, n)
                {
                    trap!("__memcpy out of bounds ({src} -> {dst}, {n} bytes)");
                }
                self.mem.copy(src, dst, n);
            }
            Builtin::Tid => {
                ctx.ops.push(Value::I(ctx.tid as i64));
            }
            Builtin::NThreads => {
                ctx.ops.push(Value::I(self.config.nthreads as i64));
            }
        }
        Ok(())
    }
}

pub(crate) fn cmp_result(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}
