//! A small persistent task executor for request-level concurrency.
//!
//! [`crate::pool`] parallelizes *inside* one program run (loop iterations
//! across a `Vm`'s workers). The daemon in `dse-server` needs the
//! orthogonal axis: many independent compile-and-run requests in flight at
//! once, each of which may itself spin up a per-`Vm` loop pool. This is a
//! plain fixed-size thread pool over boxed closures — no stealing, no
//! shared loop state — deliberately separate from the loop executor so the
//! two kinds of parallelism stay independently tunable.
//!
//! Workers block on a condvar-guarded queue; `Drop` closes the queue and
//! joins every worker, so a daemon shutdown drains in-flight requests
//! before the listener thread exits.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: VecDeque<Task>,
    closed: bool,
    submitted: u64,
    completed: u64,
    queued_peak: u64,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// Snapshot of a [`TaskPool`]'s lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskPoolStats {
    /// Worker threads owned by the pool.
    pub workers: u64,
    /// Tasks accepted by [`TaskPool::submit`].
    pub submitted: u64,
    /// Tasks that finished running (panicked tasks count too).
    pub completed: u64,
    /// Tasks waiting in the queue right now.
    pub queued: u64,
    /// High-water mark of the queue depth (tasks that had to wait behind
    /// a busy pool — the daemon's saturation signal).
    pub queued_peak: u64,
}

/// A fixed-size pool of worker threads executing boxed closures in FIFO
/// order. See the module docs for how this relates to the per-`Vm` loop
/// pool.
pub struct TaskPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `workers` threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                closed: false,
                submitted: 0,
                completed: 0,
                queued_peak: 0,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dse-task-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn task pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Enqueues a task. Panics if called after the pool started shutting
    /// down (only possible via a leaked reference across `Drop`).
    pub fn submit<F: FnOnce() + Send + 'static>(&self, task: F) {
        let mut q = self.shared.queue.lock().unwrap();
        assert!(!q.closed, "submit on a closed TaskPool");
        q.submitted += 1;
        q.tasks.push_back(Box::new(task));
        q.queued_peak = q.queued_peak.max(q.tasks.len() as u64);
        drop(q);
        self.shared.available.notify_one();
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TaskPoolStats {
        let q = self.shared.queue.lock().unwrap();
        TaskPoolStats {
            workers: self.workers.len() as u64,
            submitted: q.submitted,
            completed: q.completed,
            queued: q.tasks.len() as u64,
            queued_peak: q.queued_peak,
        }
    }

    /// Blocks until every submitted task has completed.
    pub fn wait_idle(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while q.completed < q.submitted {
            q = self.shared.available.wait(q).unwrap();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().closed = true;
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.closed {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        // A panicking request must not take the worker down with it; the
        // catch keeps the pool serving subsequent requests.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
        let mut q = shared.queue.lock().unwrap();
        q.completed += 1;
        drop(q);
        // completed moved: wake wait_idle() blockers as well as workers.
        shared.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_all_tasks_across_workers() {
        let pool = TaskPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        for n in 1..=100u64 {
            let sum = Arc::clone(&sum);
            pool.submit(move || {
                sum.fetch_add(n, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        let s = pool.stats();
        assert_eq!((s.workers, s.submitted, s.completed), (4, 100, 100));
        assert_eq!(s.queued, 0);
    }

    #[test]
    fn queue_depth_peak_tracks_backlog() {
        // One worker held busy while more tasks queue behind it.
        let pool = TaskPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let gate = Arc::new(Mutex::new(rx));
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let _ = g.lock().unwrap().recv();
        });
        for _ in 0..5 {
            pool.submit(|| {});
        }
        // The blocker may or may not have been picked up yet, but the five
        // followers are all waiting.
        assert!(pool.stats().queued_peak >= 5);
        tx.send(()).unwrap();
        pool.wait_idle();
        let s = pool.stats();
        assert_eq!((s.submitted, s.completed, s.queued), (6, 6, 0));
        assert!(s.queued_peak >= 5);
    }

    #[test]
    fn drop_joins_after_draining() {
        let done = Arc::new(AtomicU64::new(0));
        {
            let pool = TaskPool::new(2);
            for _ in 0..16 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(done.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let pool = TaskPool::new(1);
        pool.submit(|| panic!("request blew up"));
        let ok = Arc::new(AtomicU64::new(0));
        let ok2 = Arc::clone(&ok);
        pool.submit(move || {
            ok2.store(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(ok.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().completed, 2);
    }
}
