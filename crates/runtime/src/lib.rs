//! # dse-runtime — the execution substrate
//!
//! A multi-threaded virtual machine for the `dse-ir` bytecode, standing in
//! for the paper's native x86 execution environment:
//!
//! * [`mem`] — byte-addressable shared memory over atomic words (word-level
//!   bulk copy/zero at any alignment), plus the retained first-fit baseline
//!   allocator used by the microbenchmarks.
//! * [`alloc`] — the production heap: size-class segregated free lists with
//!   sharded front-end caches (O(1), mostly uncontended alloc/free) and a
//!   sharded allocation registry (parallel interior-pointer lookup,
//!   live/peak accounting for the Figure 14 memory experiments).
//! * [`vm`] — the interpreter: operand stack, call frames on in-VM stacks,
//!   builtins (`malloc`..`free`, host I/O, `__tid`/`__nthreads` and the
//!   expansion pass's `__realloc_expanded`), and per-thread cost counters
//!   in the categories of the paper's Figure 12.
//! * [`exec`] — the parallel executor: DOALL chunked dynamic scheduling
//!   with work stealing, DOACROSS dynamic chunk-1 scheduling with
//!   post/wait ordering (GOMP stand-in).
//! * [`pool`] — the persistent worker pool behind [`exec`]: one spawn per
//!   run, condvar-parked workers woken by loop-dispatch descriptors,
//!   reusable per-worker contexts with thread-affine heap magazines.
//! * [`privatize`] — the SpiceC-style runtime-privatization baseline
//!   (Section 4.2.1): copy-in on first touch, address translation per
//!   access, commit at loop end.
//! * [`observer`] — hooks the dependence profiler uses to watch serial
//!   runs.
//! * [`tracebuf`] — always-compiled-in, off-by-default event tracing:
//!   per-worker ring buffers of fixed-size binary events (dispatch,
//!   steal, park/wake, loop spans, DOACROSS wait/post, allocator slow
//!   paths), drained into one sink at dispatch end.
//! * [`prof`] — the attributing opcode profiler: retired instructions per
//!   (loop id, opcode class) and per-iteration cost histograms.
//!
//! ```
//! use dse_runtime::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = dse_lang::compile_to_ast("int main() { return 6 * 7; }")?;
//! let compiled = dse_ir::lower_program(&program, &Default::default())?;
//! let mut vm = Vm::new(compiled, VmConfig::default())?;
//! let report = vm.run()?;
//! assert_eq!(report.return_value, Some(dse_runtime::Value::I(42)));
//! # Ok(())
//! # }
//! ```

pub mod alloc;
pub mod backend;
pub mod exec;
pub mod mem;
pub mod observer;
pub mod pool;
pub mod privatize;
pub mod prof;
pub mod regvm;
pub mod taskpool;
pub mod tracebuf;
pub mod vm;

pub use alloc::{Allocation, Heap, HeapContention};
pub use backend::BackendKind;
pub use mem::{FirstFitHeap, SharedMem};
pub use observer::{NullObserver, Observer};
pub use pool::{DoallSchedule, PoolStats, ThreadMode};
pub use prof::{class_of, LoopProfile, OpClass, Pow2Hist, CLASS_NAMES, NCLASS, SERIAL_LOOP};
pub use taskpool::{TaskPool, TaskPoolStats};
pub use tracebuf::{EventBuf, EventKind, TraceEvent, TraceSink, HEAP_TID};
pub use vm::{Counters, RunReport, ThreadCtx, Value, Vm, VmConfig, VmError};
