//! Low-overhead runtime event tracing: fixed-size binary events, per-worker
//! ring buffers, one shared sink.
//!
//! The tracing subsystem is always compiled in and off by default
//! ([`crate::vm::VmConfig::trace`]). When enabled, every worker records
//! [`TraceEvent`]s into its own [`EventBuf`] — a fixed-capacity ring owned
//! by the worker's `ThreadCtx`, written with plain stores (no locks, no
//! atomics on the hot path). Buffers are drained into the VM's
//! [`TraceSink`] at dispatch end, alongside the existing counter flush, so
//! the sink mutex is taken once per (worker, loop), never per event.
//!
//! Overflow policy: a full ring overwrites its *oldest* event and bumps a
//! `dropped` count, so a trace always holds the most recent window and the
//! exporter can report exactly how much history was lost.
//!
//! Timestamps are nanosecond offsets from the sink's epoch (taken at
//! `Vm::new`), so events from different workers, the allocator and the
//! compilation pipeline land on one comparable timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened. Encoded in one byte; `a`/`b` payloads per kind are
/// documented on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Span: one worker's participation in one loop dispatch.
    /// `a` = loop id, `b` = iterations executed by this worker (0 if not
    /// tracked).
    LoopRun = 0,
    /// Instant: the master published a loop to the executor.
    /// `a` = loop id, `b` = worker count.
    Dispatch = 1,
    /// Instant: a thief took the back half of a victim's DOALL share.
    /// `a` = loop id, `b` = victim worker index.
    Steal = 2,
    /// Span: a pool worker parked on the dispatch condvar (`a`/`b`
    /// unused).
    Park = 3,
    /// Instant: a pool worker woke up with a job. `a` = loop id of the job.
    Wake = 4,
    /// Span: time inside a DOACROSS `Wait` until the predecessor posted.
    /// `a` = loop id, `b` = iteration waited on.
    WaitSpan = 5,
    /// Instant: an iteration's ordered section posted.
    /// `a` = loop id, `b` = iteration.
    Post = 6,
    /// Instant: a VM trap. `a` = faulting pc, `b` = loop id (or
    /// `u64::MAX` outside a loop).
    Trap = 7,
    /// Instant: allocator front-end magazine refill from the backend.
    /// `a` = size class, `b` = blocks obtained.
    Refill = 8,
    /// Span: allocator scavenge (magazine flush back to the backend).
    Scavenge = 9,
}

impl EventKind {
    /// Stable lowercase name (chrome-trace event name, flamegraph frame).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::LoopRun => "loop_run",
            EventKind::Dispatch => "dispatch",
            EventKind::Steal => "steal",
            EventKind::Park => "park",
            EventKind::Wake => "wake",
            EventKind::WaitSpan => "wait",
            EventKind::Post => "post",
            EventKind::Trap => "trap",
            EventKind::Refill => "refill",
            EventKind::Scavenge => "scavenge",
        }
    }

    /// Whether events of this kind carry a duration (chrome `X` events);
    /// the rest are instants (chrome `i` events).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::LoopRun | EventKind::Park | EventKind::WaitSpan | EventKind::Scavenge
        )
    }
}

/// Pseudo worker id used for events not tied to a VM thread (allocator
/// backend activity). The chrome exporter gives these their own track.
pub const HEAP_TID: u32 = u32::MAX;

/// One fixed-size binary trace event (40 bytes). Field meaning of `a`/`b`
/// depends on [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time, nanoseconds since the sink epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 for instant events.
    pub dur_ns: u64,
    /// First payload (see [`EventKind`]).
    pub a: u64,
    /// Second payload (see [`EventKind`]).
    pub b: u64,
    /// Worker index that recorded the event ([`HEAP_TID`] for allocator
    /// backend events).
    pub tid: u32,
    /// Event kind.
    pub kind: EventKind,
}

/// A worker-owned fixed-capacity event ring. Plain stores only — the owner
/// is the sole writer and the sole reader until it drains itself into the
/// shared [`TraceSink`] at dispatch end.
#[derive(Debug)]
pub struct EventBuf {
    /// Storage; grows with pushes until it reaches `cap`, then becomes a
    /// ring with `head` marking the oldest (= next overwritten) slot.
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    /// Events overwritten since the last drain.
    dropped: u64,
}

impl EventBuf {
    /// A ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> EventBuf {
        let cap = cap.max(1);
        EventBuf {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Records one event, overwriting the oldest (and counting it dropped)
    /// when full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten since the last [`EventBuf::drain`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes every buffered event in record order (oldest first) and
    /// resets the ring. Returns `(events, dropped)` where `dropped` is the
    /// overwrite count since the previous drain.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        // Once wrapped, `head` is the oldest slot: replay [head..) then
        // [..head). Before wrapping, insertion order is index order.
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        let dropped = self.dropped;
        self.dropped = 0;
        (out, dropped)
    }
}

/// The VM-wide collection point. Workers drain their rings here once per
/// dispatch; slow paths with no thread context (allocator backend, pool
/// park/wake) push directly — both are off the per-instruction hot path.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A sink whose timeline starts now.
    pub fn new() -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The instant all timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds elapsed since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Pushes one event directly (slow paths only).
    pub fn push(&self, ev: TraceEvent) {
        self.events.lock().unwrap().push(ev);
    }

    /// Drains a worker ring into the sink (one lock per dispatch).
    pub fn absorb(&self, buf: &mut EventBuf) {
        let (evs, dropped) = buf.drain();
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        if !evs.is_empty() {
            self.events.lock().unwrap().extend_from_slice(&evs);
        }
    }

    /// Takes the collected trace, sorted by start time, plus the total
    /// ring-overflow drop count.
    pub fn take(&self) -> (Vec<TraceEvent>, u64) {
        let mut evs = std::mem::take(&mut *self.events.lock().unwrap());
        evs.sort_by_key(|e| e.ts_ns);
        (evs, self.dropped.load(Ordering::Relaxed))
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: 0,
            a: ts,
            b: 0,
            tid: 0,
            kind: EventKind::Post,
        }
    }

    #[test]
    fn ring_keeps_order_before_wrap() {
        let mut r = EventBuf::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = EventBuf::new(4);
        for i in 0..11 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 7);
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 7);
        // The most recent window, oldest first.
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            [7, 8, 9, 10]
        );
        // Drain resets both the ring and the drop count.
        let (evs2, dropped2) = r.drain();
        assert!(evs2.is_empty());
        assert_eq!(dropped2, 0);
    }

    #[test]
    fn ring_wrap_boundary_exact_fill() {
        let mut r = EventBuf::new(3);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        let (evs, _) = r.drain();
        assert_eq!(evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), [0, 1, 2]);
        // One past capacity: exactly one drop, window slides by one.
        for i in 0..4 {
            r.push(ev(i));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 1);
        assert_eq!(evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn sink_orders_and_accumulates_drops() {
        let sink = TraceSink::new();
        let mut a = EventBuf::new(2);
        a.push(ev(5));
        a.push(ev(9));
        a.push(ev(1)); // overwrites ts=5
        let mut b = EventBuf::new(4);
        b.push(ev(3));
        sink.absorb(&mut a);
        sink.absorb(&mut b);
        sink.push(ev(7));
        let (evs, dropped) = sink.take();
        assert_eq!(dropped, 1);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            [1, 3, 7, 9]
        );
    }
}
