//! Byte-addressable shared virtual memory, plus the retained first-fit
//! heap baseline.
//!
//! The memory is a flat array of `AtomicU64` words. All accesses use
//! `Relaxed` atomics — the expansion transformation (like the paper's) is
//! responsible for eliminating logical races; the atomics merely keep the
//! simulator free of undefined behavior, and sub-word stores use a CAS
//! read-modify-write so concurrent writes to adjacent bytes never tear.
//! Cross-thread ordering for DOACROSS loops is established by the
//! executor's release/acquire `post`/`wait` counter, not here.
//!
//! Bulk operations (`copy`, `zero`) move whole words regardless of the
//! relative alignment of source and destination: reads may straddle a word
//! boundary (two loads), while stores are aligned single-word writes, so
//! an unaligned 1 KiB copy costs ~128 word operations instead of 1024
//! CAS-spliced byte writes.
//!
//! The production allocator lives in [`crate::alloc`] (size-class
//! segregated free lists, sharded front-end caches, sharded registry);
//! [`FirstFitHeap`] here is the original global-mutex first-fit allocator,
//! kept as the microbenchmark baseline and as a differential-testing
//! oracle for the allocator property tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use crate::alloc::{Allocation, Heap, HEAP_ALIGN};

/// Flat byte-addressable memory backed by atomic words.
#[derive(Debug)]
pub struct SharedMem {
    words: Box<[AtomicU64]>,
    bytes: u64,
}

impl SharedMem {
    /// Allocates `bytes` of zeroed memory (rounded up to a word).
    pub fn new(bytes: u64) -> Self {
        let nwords = (bytes as usize).div_ceil(8);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        SharedMem {
            words,
            bytes: nwords as u64 * 8,
        }
    }

    /// Total capacity in bytes.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// True if `[addr, addr+width)` lies inside the memory.
    pub fn in_bounds(&self, addr: u64, width: u64) -> bool {
        addr.checked_add(width).is_some_and(|end| end <= self.bytes)
    }

    /// Reads `width` (1..=8) bytes at `addr`, zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (the VM bounds-checks first and reports a
    /// trap; this is the last line of defense).
    pub fn read(&self, addr: u64, width: u32) -> u64 {
        debug_assert!((1..=8).contains(&width));
        assert!(self.in_bounds(addr, width as u64), "oob read");
        let wi = (addr / 8) as usize;
        let off = (addr % 8) as u32;
        if off + width <= 8 {
            let w = self.words[wi].load(Ordering::Relaxed);
            extract(w, off, width)
        } else {
            let lo_n = 8 - off;
            let hi_n = width - lo_n;
            let lo = extract(self.words[wi].load(Ordering::Relaxed), off, lo_n);
            let hi = extract(self.words[wi + 1].load(Ordering::Relaxed), 0, hi_n);
            lo | (hi << (lo_n * 8))
        }
    }

    /// Writes the low `width` (1..=8) bytes of `val` at `addr`.
    ///
    /// Sub-word writes use CAS read-modify-write, so concurrent writes to
    /// the *other* bytes of the same word are preserved.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn write(&self, addr: u64, width: u32, val: u64) {
        debug_assert!((1..=8).contains(&width));
        assert!(self.in_bounds(addr, width as u64), "oob write");
        let wi = (addr / 8) as usize;
        let off = (addr % 8) as u32;
        if width == 8 && off == 0 {
            self.words[wi].store(val, Ordering::Relaxed);
        } else if off + width <= 8 {
            self.splice(wi, off, width, val);
        } else {
            let lo_n = 8 - off;
            let hi_n = width - lo_n;
            self.splice(wi, off, lo_n, val);
            self.splice(wi + 1, 0, hi_n, val >> (lo_n * 8));
        }
    }

    /// CAS-splices the low `nbytes` of `chunk` into word `wi` at byte `off`.
    fn splice(&self, wi: usize, off: u32, nbytes: u32, chunk: u64) {
        let mask = bytes_mask(nbytes) << (off * 8);
        let bits = (chunk & bytes_mask(nbytes)) << (off * 8);
        let w = &self.words[wi];
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | bits;
            match w.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copies `len` bytes from `src` to `dst` with `memmove` semantics:
    /// overlapping regions copy correctly in either direction.
    ///
    /// Moves whole words for any relative alignment of `src` and `dst`:
    /// each chunk is fully read (one or two word loads) before it is
    /// written, the destination is walked to a word boundary with a single
    /// sub-word splice, and the bulk runs as aligned word stores.
    pub fn copy(&self, src: u64, dst: u64, len: u64) {
        assert!(
            self.in_bounds(src, len) && self.in_bounds(dst, len),
            "oob copy"
        );
        if len == 0 || src == dst {
            return;
        }
        if dst > src && dst < src + len {
            // Overlapping forward copy: walk backwards in word chunks so
            // sources are read before they are overwritten. Each chunk's
            // writes land strictly above everything later chunks read.
            let mut i = len;
            while i >= 8 {
                i -= 8;
                let w = self.read(src + i, 8);
                self.write(dst + i, 8, w);
            }
            if i > 0 {
                let w = self.read(src, i as u32);
                self.write(dst, i as u32, w);
            }
            return;
        }
        // Forward copy (disjoint, or overlapping with dst < src): align the
        // destination, then stream whole words.
        let head = ((8 - dst % 8) % 8).min(len);
        let mut i = 0;
        if head > 0 {
            let w = self.read(src, head as u32);
            self.write(dst, head as u32, w);
            i = head;
        }
        while i + 8 <= len {
            let w = self.read(src + i, 8);
            self.write(dst + i, 8, w);
            i += 8;
        }
        if i < len {
            let tail = (len - i) as u32;
            let w = self.read(src + i, tail);
            self.write(dst + i, tail, w);
        }
    }

    /// Zeroes `len` bytes starting at `addr`: one splice to the word
    /// boundary, aligned word stores for the bulk, one splice for the tail.
    pub fn zero(&self, addr: u64, len: u64) {
        assert!(self.in_bounds(addr, len), "oob zero");
        if len == 0 {
            return;
        }
        let head = ((8 - addr % 8) % 8).min(len);
        let mut i = 0;
        if head > 0 {
            self.write(addr, head as u32, 0);
            i = head;
        }
        while i + 8 <= len {
            self.write(addr + i, 8, 0);
            i += 8;
        }
        if i < len {
            self.write(addr + i, (len - i) as u32, 0);
        }
    }
}

fn extract(word: u64, off: u32, nbytes: u32) -> u64 {
    (word >> (off * 8)) & bytes_mask(nbytes)
}

fn bytes_mask(nbytes: u32) -> u64 {
    if nbytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (nbytes * 8)) - 1
    }
}

/// Sign-extends the low `width` bytes of `raw` to a full `i64`.
pub fn sign_extend(raw: u64, width: u32) -> i64 {
    if width >= 8 {
        return raw as i64;
    }
    let shift = 64 - width * 8;
    ((raw << shift) as i64) >> shift
}

// ---------------------------------------------------------------------------
// first-fit baseline allocator
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FirstFitState {
    /// Free blocks by base address -> size (coalesced).
    free: BTreeMap<u64, u64>,
    /// Live allocations by base address.
    live: BTreeMap<u64, Allocation>,
    next_id: u64,
    live_bytes: u64,
    peak_live_bytes: u64,
    total_allocs: u64,
}

/// The original global-mutex first-fit allocator: every operation takes one
/// big lock and allocation is a linear scan of the free list.
///
/// Retained as the baseline for the `alloc_churn` microbenchmarks (the
/// centralized design whose serialization the sharded [`Heap`] removes)
/// and as a differential-testing oracle in the allocator property tests.
/// The production VM uses [`Heap`].
#[derive(Debug)]
pub struct FirstFitHeap {
    state: Mutex<FirstFitState>,
    base: u64,
    limit: u64,
}

impl FirstFitHeap {
    /// Creates a heap managing `[base, limit)`.
    pub fn new(base: u64, limit: u64) -> Self {
        let base = dse_lang::types::round_up(base, HEAP_ALIGN);
        let mut free = BTreeMap::new();
        if limit > base {
            free.insert(base, limit - base);
        }
        FirstFitHeap {
            state: Mutex::new(FirstFitState {
                free,
                live: BTreeMap::new(),
                next_id: 1,
                live_bytes: 0,
                peak_live_bytes: 0,
                total_allocs: 0,
            }),
            base,
            limit,
        }
    }

    /// Start of the heap region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// End of the heap region.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Allocates `size` bytes (`size == 0` behaves like `size == 1`).
    pub fn alloc(&self, size: u64) -> Option<Allocation> {
        let want = dse_lang::types::round_up(size.max(1), HEAP_ALIGN);
        let mut st = self.state.lock().unwrap();
        let (&fbase, &fsize) = st.free.iter().find(|(_, &s)| s >= want)?;
        st.free.remove(&fbase);
        if fsize > want {
            st.free.insert(fbase + want, fsize - want);
        }
        let id = st.next_id;
        st.next_id += 1;
        let a = Allocation {
            base: fbase,
            size,
            block: want,
            id,
        };
        st.live.insert(fbase, a);
        st.live_bytes += want;
        st.peak_live_bytes = st.peak_live_bytes.max(st.live_bytes);
        st.total_allocs += 1;
        Some(a)
    }

    /// Frees the allocation starting exactly at `base`.
    pub fn free(&self, base: u64) -> Option<Allocation> {
        let mut st = self.state.lock().unwrap();
        let a = st.live.remove(&base)?;
        st.live_bytes -= a.block;
        // Insert and coalesce with neighbors.
        let mut nbase = base;
        let mut nsize = a.block;
        if let Some((&pb, &ps)) = st.free.range(..base).next_back() {
            if pb + ps == nbase {
                st.free.remove(&pb);
                nbase = pb;
                nsize += ps;
            }
        }
        if let Some((&sb, &ss)) = st.free.range(nbase + nsize..).next() {
            if nbase + nsize == sb {
                st.free.remove(&sb);
                nsize += ss;
            }
        }
        st.free.insert(nbase, nsize);
        Some(a)
    }

    /// Finds the live allocation containing `addr` (block-bound, matching
    /// [`Heap::containing`]).
    pub fn containing(&self, addr: u64) -> Option<Allocation> {
        let st = self.state.lock().unwrap();
        let (_, a) = st.live.range(..=addr).next_back()?;
        (addr < a.end()).then_some(*a)
    }

    /// The live allocation starting exactly at `base`.
    pub fn at_base(&self, base: u64) -> Option<Allocation> {
        self.state.lock().unwrap().live.get(&base).copied()
    }

    /// Current live heap bytes (block granularity).
    pub fn live_bytes(&self) -> u64 {
        self.state.lock().unwrap().live_bytes
    }

    /// High-water mark of live heap bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.state.lock().unwrap().peak_live_bytes
    }

    /// Total number of allocations ever made.
    pub fn total_allocs(&self) -> u64 {
        self.state.lock().unwrap().total_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_all_widths() {
        let m = SharedMem::new(64);
        for width in [1u32, 2, 4, 8] {
            for addr in 0..(32 - width as u64) {
                let val = 0xDEAD_BEEF_CAFE_F00Du64 & bytes_mask(width);
                m.write(addr, width, val);
                assert_eq!(m.read(addr, width), val, "w={width} a={addr}");
                m.write(addr, width, 0);
            }
        }
    }

    #[test]
    fn unaligned_word_crossing_access() {
        let m = SharedMem::new(64);
        m.write(5, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(5, 8), 0x1122_3344_5566_7788);
        // Neighbors untouched.
        assert_eq!(m.read(0, 4), 0);
        assert_eq!(m.read(13, 2), 0);
    }

    #[test]
    fn adjacent_bytes_preserved() {
        let m = SharedMem::new(16);
        m.write(0, 8, u64::MAX);
        m.write(3, 1, 0);
        assert_eq!(m.read(0, 8), 0xFFFF_FFFF_00FF_FFFF);
    }

    #[test]
    fn sign_extend_behaviour() {
        assert_eq!(sign_extend(0xFF, 1), -1);
        assert_eq!(sign_extend(0x7F, 1), 127);
        assert_eq!(sign_extend(0xFFFF, 2), -1);
        assert_eq!(sign_extend(0x8000_0000, 4), i32::MIN as i64);
        assert_eq!(sign_extend(u64::MAX, 8), -1);
    }

    #[test]
    fn copy_and_zero() {
        let m = SharedMem::new(128);
        for i in 0..16 {
            m.write(i, 1, i + 1);
        }
        m.copy(0, 40, 16);
        for i in 0..16 {
            assert_eq!(m.read(40 + i, 1), i + 1);
        }
        // Misaligned copy.
        m.copy(1, 65, 10);
        for i in 0..10 {
            assert_eq!(m.read(65 + i, 1), i + 2);
        }
        m.zero(40, 16);
        for i in 0..16 {
            assert_eq!(m.read(40 + i, 1), 0);
        }
    }

    #[test]
    fn misaligned_bulk_copy_every_phase() {
        // All 8x8 relative alignments, with a length that exercises head,
        // word bulk, and tail.
        for s in 0..8u64 {
            for d in 0..8u64 {
                let m = SharedMem::new(256);
                for i in 0..40 {
                    m.write(s + i, 1, (i + 1) & 0xFF);
                }
                m.copy(s, 128 + d, 40);
                for i in 0..40 {
                    assert_eq!(m.read(128 + d + i, 1), (i + 1) & 0xFF, "s={s} d={d} i={i}");
                }
            }
        }
    }

    #[test]
    fn overlapping_copies_both_directions() {
        // Forward overlap (dst inside [src, src+len)) with a sub-word gap.
        let m = SharedMem::new(128);
        for i in 0..24 {
            m.write(i, 1, i + 1);
        }
        m.copy(0, 3, 24);
        for i in 0..24 {
            assert_eq!(m.read(3 + i, 1), i + 1, "forward overlap byte {i}");
        }
        // Backward overlap (dst < src).
        let m = SharedMem::new(128);
        for i in 0..24 {
            m.write(8 + i, 1, i + 1);
        }
        m.copy(8, 3, 24);
        for i in 0..24 {
            assert_eq!(m.read(3 + i, 1), i + 1, "backward overlap byte {i}");
        }
    }

    #[test]
    fn unaligned_zero() {
        let m = SharedMem::new(64);
        for i in 0..40 {
            m.write(i, 1, 0xAB);
        }
        m.zero(3, 29);
        for i in 0..3 {
            assert_eq!(m.read(i, 1), 0xAB);
        }
        for i in 3..32 {
            assert_eq!(m.read(i, 1), 0);
        }
        for i in 32..40 {
            assert_eq!(m.read(i, 1), 0xAB);
        }
    }

    #[test]
    fn bounds_checking() {
        let m = SharedMem::new(16);
        assert!(m.in_bounds(8, 8));
        assert!(!m.in_bounds(9, 8));
        assert!(!m.in_bounds(u64::MAX, 2));
    }

    #[test]
    fn concurrent_subword_writes_do_not_tear() {
        use std::sync::Arc;
        let m = Arc::new(SharedMem::new(64));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.write(t, 1, t + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(m.read(t, 1), t + 1);
        }
    }

    #[test]
    fn first_fit_baseline_reuses_and_coalesces() {
        let h = FirstFitHeap::new(0, 1024);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(100).unwrap();
        assert_ne!(a.base, b.base);
        h.free(a.base).unwrap();
        let c = h.alloc(50).unwrap();
        assert_eq!(c.base, a.base, "first-fit reuses the freed block");
        h.free(b.base);
        h.free(c.base);
        assert!(h.alloc(1008).is_some(), "full arena coalesces");
        assert_eq!(h.containing(5), h.at_base(0));
    }
}
