//! Byte-addressable shared virtual memory and the heap allocator.
//!
//! The memory is a flat array of `AtomicU64` words. All accesses use
//! `Relaxed` atomics — the expansion transformation (like the paper's) is
//! responsible for eliminating logical races; the atomics merely keep the
//! simulator free of undefined behavior, and sub-word stores use a CAS
//! read-modify-write so concurrent writes to adjacent bytes never tear.
//! Cross-thread ordering for DOACROSS loops is established by the
//! executor's release/acquire `post`/`wait` counter, not here.
//!
//! The heap allocator is a first-fit free list with coalescing and an
//! allocation registry supporting interior-pointer lookup (needed by the
//! paper's "heap prefix" runtime-privatization fast path and by `realloc`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Flat byte-addressable memory backed by atomic words.
#[derive(Debug)]
pub struct SharedMem {
    words: Box<[AtomicU64]>,
    bytes: u64,
}

impl SharedMem {
    /// Allocates `bytes` of zeroed memory (rounded up to a word).
    pub fn new(bytes: u64) -> Self {
        let nwords = (bytes as usize).div_ceil(8);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        SharedMem {
            words,
            bytes: nwords as u64 * 8,
        }
    }

    /// Total capacity in bytes.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// True if `[addr, addr+width)` lies inside the memory.
    pub fn in_bounds(&self, addr: u64, width: u64) -> bool {
        addr.checked_add(width).is_some_and(|end| end <= self.bytes)
    }

    /// Reads `width` (1..=8) bytes at `addr`, zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (the VM bounds-checks first and reports a
    /// trap; this is the last line of defense).
    pub fn read(&self, addr: u64, width: u32) -> u64 {
        debug_assert!((1..=8).contains(&width));
        assert!(self.in_bounds(addr, width as u64), "oob read");
        let wi = (addr / 8) as usize;
        let off = (addr % 8) as u32;
        if off + width <= 8 {
            let w = self.words[wi].load(Ordering::Relaxed);
            extract(w, off, width)
        } else {
            let lo_n = 8 - off;
            let hi_n = width - lo_n;
            let lo = extract(self.words[wi].load(Ordering::Relaxed), off, lo_n);
            let hi = extract(self.words[wi + 1].load(Ordering::Relaxed), 0, hi_n);
            lo | (hi << (lo_n * 8))
        }
    }

    /// Writes the low `width` (1..=8) bytes of `val` at `addr`.
    ///
    /// Sub-word writes use CAS read-modify-write, so concurrent writes to
    /// the *other* bytes of the same word are preserved.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn write(&self, addr: u64, width: u32, val: u64) {
        debug_assert!((1..=8).contains(&width));
        assert!(self.in_bounds(addr, width as u64), "oob write");
        let wi = (addr / 8) as usize;
        let off = (addr % 8) as u32;
        if width == 8 && off == 0 {
            self.words[wi].store(val, Ordering::Relaxed);
        } else if off + width <= 8 {
            self.splice(wi, off, width, val);
        } else {
            let lo_n = 8 - off;
            let hi_n = width - lo_n;
            self.splice(wi, off, lo_n, val);
            self.splice(wi + 1, 0, hi_n, val >> (lo_n * 8));
        }
    }

    /// CAS-splices the low `nbytes` of `chunk` into word `wi` at byte `off`.
    fn splice(&self, wi: usize, off: u32, nbytes: u32, chunk: u64) {
        let mask = bytes_mask(nbytes) << (off * 8);
        let bits = (chunk & bytes_mask(nbytes)) << (off * 8);
        let w = &self.words[wi];
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | bits;
            match w.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copies `len` bytes from `src` to `dst` with `memmove` semantics:
    /// overlapping regions copy correctly in either direction.
    pub fn copy(&self, src: u64, dst: u64, len: u64) {
        assert!(
            self.in_bounds(src, len) && self.in_bounds(dst, len),
            "oob copy"
        );
        if dst > src && dst < src + len {
            // Overlapping forward copy: go backwards so sources are read
            // before they are overwritten.
            let mut i = len;
            while i > 0 {
                i -= 1;
                let b = self.read(src + i, 1);
                self.write(dst + i, 1, b);
            }
            return;
        }
        let mut i = 0;
        // Word-at-a-time when both are aligned.
        if src % 8 == dst % 8 {
            while !(src + i).is_multiple_of(8) && i < len {
                let b = self.read(src + i, 1);
                self.write(dst + i, 1, b);
                i += 1;
            }
            while i + 8 <= len {
                let w = self.read(src + i, 8);
                self.write(dst + i, 8, w);
                i += 8;
            }
        }
        while i < len {
            let b = self.read(src + i, 1);
            self.write(dst + i, 1, b);
            i += 1;
        }
    }

    /// Zeroes `len` bytes starting at `addr`.
    pub fn zero(&self, addr: u64, len: u64) {
        assert!(self.in_bounds(addr, len), "oob zero");
        let mut i = 0;
        while !(addr + i).is_multiple_of(8) && i < len {
            self.write(addr + i, 1, 0);
            i += 1;
        }
        while i + 8 <= len {
            self.write(addr + i, 8, 0);
            i += 8;
        }
        while i < len {
            self.write(addr + i, 1, 0);
            i += 1;
        }
    }
}

fn extract(word: u64, off: u32, nbytes: u32) -> u64 {
    (word >> (off * 8)) & bytes_mask(nbytes)
}

fn bytes_mask(nbytes: u32) -> u64 {
    if nbytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (nbytes * 8)) - 1
    }
}

/// Sign-extends the low `width` bytes of `raw` to a full `i64`.
pub fn sign_extend(raw: u64, width: u32) -> i64 {
    if width >= 8 {
        return raw as i64;
    }
    let shift = 64 - width * 8;
    ((raw << shift) as i64) >> shift
}

// ---------------------------------------------------------------------------
// allocator
// ---------------------------------------------------------------------------

/// One live heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base address.
    pub base: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Monotonic id, unique per allocation over the program's lifetime.
    pub id: u64,
}

#[derive(Debug)]
struct HeapState {
    /// Free blocks by base address -> size (coalesced).
    free: BTreeMap<u64, u64>,
    /// Live allocations by base address.
    live: BTreeMap<u64, Allocation>,
    next_id: u64,
    live_bytes: u64,
    peak_live_bytes: u64,
    total_allocs: u64,
}

/// Thread-safe first-fit heap allocator with an allocation registry.
#[derive(Debug)]
pub struct Heap {
    state: Mutex<HeapState>,
    base: u64,
    limit: u64,
}

/// Alignment of every heap allocation.
pub const HEAP_ALIGN: u64 = 16;

impl Heap {
    /// Creates a heap managing `[base, limit)`.
    pub fn new(base: u64, limit: u64) -> Self {
        let base = dse_lang::types::round_up(base, HEAP_ALIGN);
        let mut free = BTreeMap::new();
        if limit > base {
            free.insert(base, limit - base);
        }
        Heap {
            state: Mutex::new(HeapState {
                free,
                live: BTreeMap::new(),
                next_id: 1,
                live_bytes: 0,
                peak_live_bytes: 0,
                total_allocs: 0,
            }),
            base,
            limit,
        }
    }

    /// Start of the heap region (for address classification).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// End of the heap region.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Allocates `size` bytes (`size == 0` behaves like `size == 1`).
    /// Returns the allocation record, or `None` when out of memory.
    pub fn alloc(&self, size: u64) -> Option<Allocation> {
        let want = dse_lang::types::round_up(size.max(1), HEAP_ALIGN);
        let mut st = self.state.lock().unwrap();
        let (&fbase, &fsize) = st.free.iter().find(|(_, &s)| s >= want)?;
        st.free.remove(&fbase);
        if fsize > want {
            st.free.insert(fbase + want, fsize - want);
        }
        let id = st.next_id;
        st.next_id += 1;
        let a = Allocation {
            base: fbase,
            size,
            id,
        };
        st.live.insert(fbase, a);
        st.live_bytes += want;
        st.peak_live_bytes = st.peak_live_bytes.max(st.live_bytes);
        st.total_allocs += 1;
        Some(a)
    }

    /// Frees the allocation starting exactly at `base`. Returns the freed
    /// record, or `None` if `base` is not a live allocation base.
    pub fn free(&self, base: u64) -> Option<Allocation> {
        let mut st = self.state.lock().unwrap();
        let a = st.live.remove(&base)?;
        let want = dse_lang::types::round_up(a.size.max(1), HEAP_ALIGN);
        st.live_bytes -= want;
        // Insert and coalesce with neighbors.
        let mut nbase = base;
        let mut nsize = want;
        if let Some((&pb, &ps)) = st.free.range(..base).next_back() {
            if pb + ps == nbase {
                st.free.remove(&pb);
                nbase = pb;
                nsize += ps;
            }
        }
        if let Some((&sb, &ss)) = st.free.range(nbase + nsize..).next() {
            if nbase + nsize == sb {
                st.free.remove(&sb);
                nsize += ss;
            }
        }
        st.free.insert(nbase, nsize);
        Some(a)
    }

    /// Finds the live allocation containing `addr` (interior pointers ok).
    pub fn containing(&self, addr: u64) -> Option<Allocation> {
        let st = self.state.lock().unwrap();
        let (_, a) = st.live.range(..=addr).next_back()?;
        (addr < a.base + a.size.max(1)).then_some(*a)
    }

    /// The live allocation starting exactly at `base`.
    pub fn at_base(&self, base: u64) -> Option<Allocation> {
        self.state.lock().unwrap().live.get(&base).copied()
    }

    /// Current live heap bytes (rounded to allocator granularity).
    pub fn live_bytes(&self) -> u64 {
        self.state.lock().unwrap().live_bytes
    }

    /// High-water mark of live heap bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.state.lock().unwrap().peak_live_bytes
    }

    /// Total number of allocations ever made.
    pub fn total_allocs(&self) -> u64 {
        self.state.lock().unwrap().total_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_all_widths() {
        let m = SharedMem::new(64);
        for width in [1u32, 2, 4, 8] {
            for addr in 0..(32 - width as u64) {
                let val = 0xDEAD_BEEF_CAFE_F00Du64 & bytes_mask(width);
                m.write(addr, width, val);
                assert_eq!(m.read(addr, width), val, "w={width} a={addr}");
                m.write(addr, width, 0);
            }
        }
    }

    #[test]
    fn unaligned_word_crossing_access() {
        let m = SharedMem::new(64);
        m.write(5, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(5, 8), 0x1122_3344_5566_7788);
        // Neighbors untouched.
        assert_eq!(m.read(0, 4), 0);
        assert_eq!(m.read(13, 2), 0);
    }

    #[test]
    fn adjacent_bytes_preserved() {
        let m = SharedMem::new(16);
        m.write(0, 8, u64::MAX);
        m.write(3, 1, 0);
        assert_eq!(m.read(0, 8), 0xFFFF_FFFF_00FF_FFFF);
    }

    #[test]
    fn sign_extend_behaviour() {
        assert_eq!(sign_extend(0xFF, 1), -1);
        assert_eq!(sign_extend(0x7F, 1), 127);
        assert_eq!(sign_extend(0xFFFF, 2), -1);
        assert_eq!(sign_extend(0x8000_0000, 4), i32::MIN as i64);
        assert_eq!(sign_extend(u64::MAX, 8), -1);
    }

    #[test]
    fn copy_and_zero() {
        let m = SharedMem::new(128);
        for i in 0..16 {
            m.write(i, 1, i + 1);
        }
        m.copy(0, 40, 16);
        for i in 0..16 {
            assert_eq!(m.read(40 + i, 1), i + 1);
        }
        // Misaligned copy.
        m.copy(1, 65, 10);
        for i in 0..10 {
            assert_eq!(m.read(65 + i, 1), i + 2);
        }
        m.zero(40, 16);
        for i in 0..16 {
            assert_eq!(m.read(40 + i, 1), 0);
        }
    }

    #[test]
    fn bounds_checking() {
        let m = SharedMem::new(16);
        assert!(m.in_bounds(8, 8));
        assert!(!m.in_bounds(9, 8));
        assert!(!m.in_bounds(u64::MAX, 2));
    }

    #[test]
    fn heap_alloc_free_reuse() {
        let h = Heap::new(0, 1024);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(100).unwrap();
        assert_ne!(a.base, b.base);
        assert_ne!(a.id, b.id);
        h.free(a.base).unwrap();
        let c = h.alloc(50).unwrap();
        assert_eq!(c.base, a.base, "first-fit reuses the freed block");
    }

    #[test]
    fn heap_coalescing_allows_full_reuse() {
        let h = Heap::new(0, 256);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        h.free(b.base);
        h.free(a.base);
        h.free(c.base);
        // After coalescing we can allocate the whole arena again.
        assert!(h.alloc(240).is_some());
    }

    #[test]
    fn heap_oom_returns_none() {
        let h = Heap::new(0, 64);
        assert!(h.alloc(128).is_none());
    }

    #[test]
    fn containing_finds_interior_pointers() {
        let h = Heap::new(0, 1024);
        let a = h.alloc(100).unwrap();
        assert_eq!(h.containing(a.base), Some(a));
        assert_eq!(h.containing(a.base + 99), Some(a));
        assert_eq!(h.containing(a.base + 100), None);
    }

    #[test]
    fn peak_tracking() {
        let h = Heap::new(0, 4096);
        let a = h.alloc(1000).unwrap();
        let b = h.alloc(1000).unwrap();
        h.free(a.base);
        h.free(b.base);
        assert_eq!(h.live_bytes(), 0);
        assert!(h.peak_live_bytes() >= 2000);
        assert_eq!(h.total_allocs(), 2);
    }

    #[test]
    fn double_free_returns_none() {
        let h = Heap::new(0, 256);
        let a = h.alloc(10).unwrap();
        assert!(h.free(a.base).is_some());
        assert!(h.free(a.base).is_none());
    }

    #[test]
    fn zero_size_alloc_is_valid_and_unique() {
        let h = Heap::new(0, 256);
        let a = h.alloc(0).unwrap();
        let b = h.alloc(0).unwrap();
        assert_ne!(a.base, b.base);
    }

    #[test]
    fn concurrent_subword_writes_do_not_tear() {
        use std::sync::Arc;
        let m = Arc::new(SharedMem::new(64));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.write(t, 1, t + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(m.read(t, 1), t + 1);
        }
    }
}
