//! The persistent work-stealing loop executor.
//!
//! The seed executor spawned fresh scoped threads for every `ParLoop` —
//! fine for one figure run, wrong for a server executing back-to-back
//! loops, where thread-creation churn and cold per-thread state dominate
//! the measurement. This module replaces it with a long-lived pool:
//!
//! * **One spawn per run.** [`crate::vm::Vm::run`] opens a single thread
//!   scope for the whole program; workers `1..N` park on a condvar between
//!   loops and are woken by a [`LoopDispatch`] descriptor (loop id, range,
//!   mode, shared [`LoopSync`]). The master participates as worker 0
//!   exactly as before, so its frame pointer still addresses the enclosing
//!   function's frame.
//! * **Reusable contexts.** Each worker owns a persistent
//!   [`ThreadCtx`] (stack region, counters, sync stack) held in
//!   [`PoolState`]; a dispatch resets the per-loop fields and keeps
//!   everything else warm.
//! * **Thread-affine heap magazines.** Worker `w` pins its allocator
//!   front-end shard to `w` on thread start
//!   ([`crate::alloc::pin_front_shard`]), so the PR 4 magazine caches are
//!   *guaranteed* (not accidentally) reused across loops: the blocks a
//!   worker freed in loop `k` are the blocks it allocates in loop `k+1`.
//! * **Dynamic DOALL scheduling.** Instead of one fixed static chunk per
//!   worker, the iteration range is split into per-worker chunk queues
//!   ([`StealQueue`]); owners claim chunks from the front, idle workers
//!   steal the back half of a victim's remaining range (leaving the owner
//!   at least one iteration). DOACROSS keeps its ordered chunk-1 claiming
//!   through the shared counter.
//!
//! Dispatch/steal/park/wakeup counts are recorded in [`PoolStats`] and
//! flow into `RunReport` → `dse-telemetry` → `dsec --metrics`.

use crate::tracebuf::{EventKind, TraceEvent};
use crate::vm::{LoopSync, ThreadCtx, VmError};
use dse_ir::loops::ParMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How DOALL iterations are divided among workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoallSchedule {
    /// Chunked dynamic scheduling with work stealing (the default).
    Stealing,
    /// One fixed contiguous chunk per worker (the seed behavior, kept as
    /// the imbalance baseline for `dse-bench`).
    Static,
}

/// How parallel loops acquire their worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadMode {
    /// Persistent pool: threads spawned once per run, parked between
    /// loops (the default).
    Pool,
    /// Fresh scoped threads for every loop (the seed behavior, kept as
    /// the dispatch-latency baseline for `dse-bench`).
    SpawnPerLoop,
}

/// Pool counters, snapshotted into `RunReport::pool`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// OS threads spawned for the pool over the run (`nthreads - 1` for a
    /// pooled run regardless of how many loops executed — the no-churn
    /// invariant the lifecycle tests assert).
    pub workers: u64,
    /// Loop dispatches handed to the pool.
    pub dispatches: u64,
    /// Successful steals of a victim's back half (DOALL stealing mode).
    pub steals: u64,
    /// Times a worker blocked on the dispatch condvar (re-checks after a
    /// spurious wakeup count again).
    pub parks: u64,
    /// Dispatches a pool worker woke up to execute.
    pub wakeups: u64,
}

#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    pub(crate) spawned: AtomicU64,
    pub(crate) dispatches: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) wakeups: AtomicU64,
}

/// One parallel loop's worth of work, published to the pool (and to the
/// scoped-spawn baseline) as a single shared descriptor.
#[derive(Debug)]
pub(crate) struct LoopDispatch {
    /// Candidate loop id.
    pub id: u32,
    /// Scheduling mode of the loop.
    pub mode: ParMode,
    /// Entry pc of the outlined body region.
    pub body: u32,
    /// Iteration range `lo..hi`.
    pub lo: i64,
    pub hi: i64,
    /// The master's frame base, shared by all workers.
    pub frame_base: u64,
    /// DOALL owner-claim granularity (iterations per `pop_front`).
    pub chunk: i64,
    /// DOALL schedule for this dispatch.
    pub schedule: DoallSchedule,
    /// Cross-iteration synchronization (shared counter, done fence, abort).
    pub sync: Arc<LoopSync>,
    /// Per-worker chunk queues (empty unless DOALL + stealing).
    pub queues: Vec<StealQueue>,
    /// First real error of any worker (abort-induced errors lose).
    pub err: Mutex<Option<VmError>>,
}

/// A worker's share of a DOALL range: a contiguous span claimed from the
/// front by its owner in `chunk`-sized pieces and halved from the back by
/// thieves. Equivalent to a deque of contiguous iteration chunks, stored
/// as its two bounds. Cache-line aligned so neighboring workers' queues
/// do not false-share.
#[repr(align(64))]
#[derive(Debug)]
pub(crate) struct StealQueue {
    range: Mutex<(i64, i64)>,
}

impl StealQueue {
    fn new(lo: i64, hi: i64) -> Self {
        StealQueue {
            range: Mutex::new((lo, hi)),
        }
    }

    /// Splits `lo..hi` into one contiguous initial range per worker (the
    /// same split static scheduling uses, so balanced loads keep their
    /// locality and stealing only kicks in under imbalance).
    pub(crate) fn split(lo: i64, hi: i64, nworkers: u32) -> Vec<StealQueue> {
        let n = nworkers as i64;
        let per = (hi - lo + n - 1) / n;
        (0..n)
            .map(|t| {
                let s = (lo + t * per).min(hi);
                let e = (s + per).min(hi);
                StealQueue::new(s, e)
            })
            .collect()
    }

    /// The owner claims the next `chunk` iterations from the front.
    pub(crate) fn pop_front(&self, chunk: i64) -> Option<(i64, i64)> {
        let mut r = self.range.lock().unwrap();
        if r.0 >= r.1 {
            return None;
        }
        let s = r.0;
        let e = (s + chunk).min(r.1);
        r.0 = e;
        Some((s, e))
    }

    /// A thief takes the back half of the remaining range. Always leaves
    /// the owner at least one iteration, so every worker with a non-empty
    /// initial share executes work (and repeated steals terminate).
    pub(crate) fn steal_half(&self) -> Option<(i64, i64)> {
        let mut r = self.range.lock().unwrap();
        let len = r.1 - r.0;
        if len < 2 {
            return None;
        }
        let take = len / 2;
        let s = r.1 - take;
        let e = r.1;
        r.1 = s;
        Some((s, e))
    }

    /// Installs a stolen range as the (empty) owner's new share, making it
    /// stealable in turn.
    pub(crate) fn install(&self, lo: i64, hi: i64) {
        let mut r = self.range.lock().unwrap();
        debug_assert!(r.0 >= r.1, "install over a non-empty queue");
        *r = (lo, hi);
    }
}

#[derive(Debug)]
struct DispatchState {
    /// Bumped once per dispatch; workers run each epoch exactly once.
    epoch: u64,
    /// The descriptor for the current epoch (cleared after completion).
    job: Option<Arc<LoopDispatch>>,
    /// Workers that have not yet finished the current epoch.
    remaining: u32,
    /// Cleared while the owning run's worker scope is up.
    shutdown: bool,
}

/// The pool's shared state. Owned by the `Vm`; the worker *threads* live
/// inside the scope `Vm::run` opens, so borrows of the VM stay safe with
/// no unsafe code, while contexts, counters and dispatch state persist in
/// the VM across loops.
pub(crate) struct PoolState {
    state: Mutex<DispatchState>,
    work_cv: Condvar,
    done_cv: Condvar,
    pub(crate) counters: PoolCounters,
    /// Reusable per-worker contexts, indexed by `wid - 1`.
    ctxs: Vec<Mutex<ThreadCtx>>,
    nworkers: u32,
}

impl PoolState {
    /// Builds pool state for workers `1..nthreads`, each with its fixed
    /// stack region.
    pub(crate) fn new(nthreads: u32, stacks_base: u64, stack_bytes: u64) -> PoolState {
        PoolState {
            state: Mutex::new(DispatchState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: true,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            counters: PoolCounters::default(),
            ctxs: (1..nthreads)
                .map(|t| {
                    Mutex::new(ThreadCtx::new(
                        t,
                        stacks_base + t as u64 * stack_bytes,
                        stack_bytes,
                    ))
                })
                .collect(),
            nworkers: nthreads - 1,
        }
    }

    /// Number of pool workers (the master is not one).
    pub(crate) fn nworkers(&self) -> u32 {
        self.nworkers
    }

    /// Worker `wid`'s persistent context.
    pub(crate) fn ctx(&self, wid: u32) -> &Mutex<ThreadCtx> {
        &self.ctxs[wid as usize - 1]
    }

    /// Marks the pool open for a run and returns the epoch workers must
    /// treat as "already seen" (read *before* any dispatch can happen, so
    /// a late-starting worker never skips a published job).
    pub(crate) fn open(&self) -> u64 {
        let mut st = self.state.lock().unwrap();
        st.shutdown = false;
        st.epoch
    }

    /// Whether a run's worker scope is currently up.
    pub(crate) fn is_open(&self) -> bool {
        !self.state.lock().unwrap().shutdown
    }

    /// Tells every parked worker to exit (end of run).
    pub(crate) fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        drop(st);
        self.work_cv.notify_all();
    }

    /// Returns a guard that shuts the pool down when dropped, so worker
    /// threads exit (and the run's scope can join them) even if the master
    /// unwinds.
    pub(crate) fn guard(&self) -> ShutdownGuard<'_> {
        ShutdownGuard(self)
    }

    /// Publishes `job` to all workers and wakes them. The caller (master)
    /// must run its own share and then [`PoolState::wait_done`].
    pub(crate) fn begin(&self, job: Arc<LoopDispatch>) {
        let mut st = self.state.lock().unwrap();
        debug_assert_eq!(st.remaining, 0, "dispatch while a loop is in flight");
        st.job = Some(job);
        st.epoch += 1;
        st.remaining = self.nworkers;
        drop(st);
        self.counters.dispatches.fetch_add(1, Ordering::Relaxed);
        self.work_cv.notify_all();
    }

    /// Blocks until every worker finished the current dispatch.
    pub(crate) fn wait_done(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.done_cv.wait(st).unwrap();
        }
        st.job = None;
    }

    /// Snapshot of the pool counters.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.counters.spawned.load(Ordering::Relaxed),
            dispatches: self.counters.dispatches.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
            parks: self.counters.parks.load(Ordering::Relaxed),
            wakeups: self.counters.wakeups.load(Ordering::Relaxed),
        }
    }
}

/// Shuts the pool down on drop (see [`PoolState::guard`]).
pub(crate) struct ShutdownGuard<'a>(&'a PoolState);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A pool worker's thread body: pin the heap magazine shard, then loop
/// parking on the dispatch condvar and executing each published epoch
/// exactly once until shutdown.
pub(crate) fn worker_entry(vm: &crate::vm::Vm, wid: u32, mut seen_epoch: u64) {
    crate::alloc::pin_front_shard(wid as usize);
    let pool = vm.pool().expect("worker_entry without a pool");
    pool.counters.spawned.fetch_add(1, Ordering::Relaxed);
    loop {
        // Park/wake tracing pushes straight to the shared sink: this is
        // the idle path (the worker is blocked either side of it), and the
        // worker's ring lives inside its context, which is locked only
        // while executing a dispatch.
        let sink = vm.trace_sink();
        let mut park_t0 = None;
        let job = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                pool.counters.parks.fetch_add(1, Ordering::Relaxed);
                if let (Some(sink), None) = (sink, park_t0) {
                    park_t0 = Some(sink.now_ns());
                }
                st = pool.work_cv.wait(st).unwrap();
            }
            seen_epoch = st.epoch;
            Arc::clone(st.job.as_ref().expect("job published with its epoch"))
        };
        pool.counters.wakeups.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = sink {
            let now = sink.now_ns();
            if let Some(t0) = park_t0 {
                sink.push(TraceEvent {
                    ts_ns: t0,
                    dur_ns: now.saturating_sub(t0),
                    a: 0,
                    b: 0,
                    tid: wid,
                    kind: EventKind::Park,
                });
            }
            sink.push(TraceEvent {
                ts_ns: now,
                dur_ns: 0,
                a: job.id as u64,
                b: 0,
                tid: wid,
                kind: EventKind::Wake,
            });
        }
        vm.run_dispatch_worker(wid, &job);
        let mut st = pool.state.lock().unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            pool.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_range_exactly_once() {
        for (lo, hi, n) in [(0, 7, 8), (0, 0, 4), (3, 5, 8), (0, 64, 3), (-5, 9, 4)] {
            let qs = StealQueue::split(lo, hi, n);
            assert_eq!(qs.len(), n as usize);
            let mut seen = Vec::new();
            for q in &qs {
                while let Some((s, e)) = q.pop_front(1) {
                    seen.extend(s..e);
                }
            }
            seen.sort_unstable();
            let want: Vec<i64> = (lo..hi).collect();
            assert_eq!(seen, want, "split({lo}, {hi}, {n})");
        }
    }

    #[test]
    fn steal_half_leaves_owner_one_iteration() {
        let q = StealQueue::new(0, 10);
        let (s, e) = q.steal_half().unwrap();
        assert_eq!((s, e), (5, 10));
        assert_eq!(q.steal_half(), Some((3, 5)));
        assert_eq!(q.steal_half(), Some((2, 3)));
        // One iteration left: not stealable, only poppable by the owner.
        assert_eq!(q.steal_half(), Some((1, 2)));
        assert_eq!(q.steal_half(), None);
        assert_eq!(q.pop_front(4), Some((0, 1)));
        assert_eq!(q.pop_front(4), None);
    }

    #[test]
    fn pop_and_steal_partition_the_range() {
        let q = StealQueue::new(0, 100);
        let mut mine = Vec::new();
        let mut stolen = Vec::new();
        loop {
            let popped = q.pop_front(3);
            if let Some((s, e)) = popped {
                mine.extend(s..e);
            }
            if let Some((s, e)) = q.steal_half() {
                stolen.extend(s..e);
            } else if popped.is_none() {
                break;
            }
        }
        let mut all = mine.clone();
        all.extend(&stolen);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i64>>());
        assert!(!stolen.is_empty());
    }
}
