//! # dse-depprof — loop-level data dependence profiling
//!
//! The paper obtains each candidate loop's data dependence graph by
//! *off-line dependence profiling* (Yu & Li, ICS'12 / ISSTA'12) followed by
//! manual verification, because static analysis is too conservative for
//! these benchmarks. This crate reproduces that component: it observes a
//! serial VM run (via [`dse_runtime::Observer`]) and builds, per candidate
//! loop, the loop-level DDG of Definition 1:
//!
//! * **flow / anti / output** dependences, each **loop-carried** or
//!   **loop-independent** (with the paper's refinement that a carried flow
//!   dependence is only recorded when the read is *not covered* by a write
//!   to the same address earlier in the same iteration),
//! * **upwards-exposed loads** (Definition 2) and **downwards-exposed
//!   stores** (Definition 3),
//! * per-site dynamic access counts (Figure 8's breakdown),
//! * the dynamic data structures each site touches (heap allocations by
//!   allocation site, plus global/stack regions) — used for Table 5 and to
//!   drive expansion decisions.
//!
//! Tracking is **byte-granular**, so recast buffers (the 256.bzip2 `zptr`
//! idiom, where an `int` buffer is read through a `short*`) produce correct
//! dependences.
//!
//! Two filters mirror how the transformed program will actually run:
//!
//! * Accesses to call frames created *after* the current iteration started
//!   are ignored: those frames live on per-thread stacks in the parallel
//!   execution, so they cannot carry cross-thread dependences.
//! * Accesses to the candidate loop's own induction variable are ignored:
//!   parallel lowering turns it into a scheduler-provided index.

use dse_ir::bytecode::{CompiledProgram, LoopEvent};
use dse_ir::sites::{AccessKind, SiteId};
use dse_runtime::observer::LayoutInfo;
use dse_runtime::{Allocation, Observer, Vm, VmConfig, VmError};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Kind of data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
}

/// One edge of a loop-level DDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepEdge {
    /// Source access site.
    pub src: SiteId,
    /// Sink access site.
    pub dst: SiteId,
    /// Dependence kind.
    pub kind: DepKind,
    /// True when the dependence crosses iterations.
    pub carried: bool,
}

/// Memory region classes a site was observed touching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionMask {
    /// Touched at least one heap allocation.
    pub heap: bool,
    /// Touched the globals segment.
    pub global: bool,
    /// Touched the enclosing function's stack frame (not transient frames).
    pub stack: bool,
}

/// The profiled dependence information for one candidate loop, accumulated
/// over every dynamic entry of the loop.
#[derive(Debug, Clone, Default)]
pub struct LoopDdg {
    /// Loop label (from `#pragma candidate`).
    pub label: String,
    /// Loop id in the serial-lowered program.
    pub loop_id: u32,
    /// All observed dependence edges.
    pub edges: HashSet<DepEdge>,
    /// Sites observed performing an upwards-exposed load.
    pub upward_exposed: HashSet<SiteId>,
    /// Sites whose stored value was used after the loop.
    pub downward_exposed: HashSet<SiteId>,
    /// Dynamic access count per site.
    pub site_counts: HashMap<SiteId, u64>,
    /// Allocation-site expression ids each site dereferenced into.
    pub site_allocs: HashMap<SiteId, HashSet<u32>>,
    /// Region classes each site touched.
    pub site_regions: HashMap<SiteId, RegionMask>,
    /// Total iterations observed (across entries).
    pub iterations: u64,
    /// Total in-loop dynamic accesses observed (after filtering).
    pub total_accesses: u64,
    /// VM instructions executed inside the loop (across entries) — the
    /// basis for Table 4's %time column.
    pub instructions: u64,
}

impl LoopDdg {
    /// All sites that appear in any carried edge of the given kinds.
    pub fn sites_in_carried(&self, kinds: &[DepKind]) -> HashSet<SiteId> {
        let mut out = HashSet::new();
        for e in &self.edges {
            if e.carried && kinds.contains(&e.kind) {
                out.insert(e.src);
                out.insert(e.dst);
            }
        }
        out
    }

    /// True if `site` participates in any loop-carried dependence.
    pub fn has_carried_dep(&self, site: SiteId) -> bool {
        self.edges
            .iter()
            .any(|e| e.carried && (e.src == site || e.dst == site))
    }

    /// All sites observed executing in the loop.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.site_counts.keys().copied()
    }
}

/// Result of profiling one program run.
#[derive(Debug, Clone, Default)]
pub struct ProfileResult {
    /// One DDG per candidate loop that executed, ordered by loop id.
    pub loops: Vec<LoopDdg>,
}

impl ProfileResult {
    /// Finds a loop's DDG by label.
    pub fn by_label(&self, label: &str) -> Option<&LoopDdg> {
        self.loops.iter().find(|l| l.label == label)
    }

    /// Whole-profile totals `(iterations, accesses, dependence edges)`
    /// summed over every profiled loop — the size stats reported on the
    /// `profile` phase span.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.loops.iter().fold((0, 0, 0), |(it, acc, ed), l| {
            (
                it + l.iterations,
                acc + l.total_accesses,
                ed + l.edges.len() as u64,
            )
        })
    }

    /// A deterministic textual rendering of the whole profile: every loop's
    /// edges, exposure sets and per-site facts in sorted order. Two
    /// profiles of the same program on the same inputs produce identical
    /// summaries, so the artifact cache can use its hash as the profile's
    /// content fingerprint (the set/map iteration order of [`LoopDdg`] is
    /// not itself stable).
    pub fn canonical_summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for l in &self.loops {
            writeln!(
                out,
                "loop {} `{}` iters={} accesses={} instructions={}",
                l.loop_id, l.label, l.iterations, l.total_accesses, l.instructions
            )
            .unwrap();
            let mut edges: Vec<&DepEdge> = l.edges.iter().collect();
            edges.sort();
            for e in edges {
                writeln!(
                    out,
                    "  edge {}->{} {:?} carried={}",
                    e.src, e.dst, e.kind, e.carried
                )
                .unwrap();
            }
            let mut sorted: Vec<SiteId> = l.upward_exposed.iter().copied().collect();
            sorted.sort_unstable();
            writeln!(out, "  upward={sorted:?}").unwrap();
            let mut sorted: Vec<SiteId> = l.downward_exposed.iter().copied().collect();
            sorted.sort_unstable();
            writeln!(out, "  downward={sorted:?}").unwrap();
            let mut sites: Vec<SiteId> = l.site_counts.keys().copied().collect();
            sites.sort_unstable();
            for s in sites {
                let count = l.site_counts[&s];
                let mut allocs: Vec<u32> = l
                    .site_allocs
                    .get(&s)
                    .map(|a| a.iter().copied().collect())
                    .unwrap_or_default();
                allocs.sort_unstable();
                let r = l.site_regions.get(&s).copied().unwrap_or_default();
                writeln!(
                    out,
                    "  site {s} count={count} allocs={allocs:?} heap={} global={} stack={}",
                    r.heap, r.global, r.stack
                )
                .unwrap();
            }
        }
        out
    }
}

/// Profiles `compiled` (which must be serially lowered, so candidate loops
/// carry `LoopMark`s) by running it to completion under the profiler.
/// Returns the profile and the VM (for output inspection).
///
/// Profiling always runs the reference stack backend, whatever the caller's
/// config says: dependence edges are defined over the reference access
/// stream, and the register backend's scalar promotion elides exactly the
/// frame loads/stores the profiler needs to see.
///
/// # Errors
///
/// Propagates VM construction/run errors.
pub fn profile_program(
    compiled: CompiledProgram,
    mut config: VmConfig,
) -> Result<(ProfileResult, Vm), VmError> {
    config.backend = dse_runtime::BackendKind::Stack;
    let mut vm = Vm::new(compiled, config)?;
    let mut profiler = Profiler::new(vm.program(), vm.layout());
    vm.run_with_observer(&mut profiler)?;
    Ok((profiler.into_result(), vm))
}

// ---------------------------------------------------------------------------
// the profiler
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct ByteState {
    /// Last write to this byte: (site, iteration).
    last_write: Option<(SiteId, u32)>,
    /// Reads since the last write, deduped by site (latest iteration kept).
    readers: Vec<(SiteId, u32)>,
}

struct ActiveLoop {
    loop_id: u32,
    /// Current iteration (0 until the first `IterStart`).
    iter: u32,
    /// Stack pointer at the current iteration's start; stack bytes at or
    /// above this are transient.
    iter_sp: u64,
    /// Address range of the induction variable (excluded from profiling).
    ind_range: (u64, u64),
    /// Thread instruction count at loop entry.
    begin_work: u64,
    bytes: HashMap<u64, ByteState>,
    ddg: LoopDdg,
}

/// Observer implementation that builds loop-level DDGs.
pub struct Profiler {
    loops_meta: Vec<(String, u32, u8)>,
    alloc_site_eids: HashMap<u32, u32>,
    stack_lo: u64,
    stack_hi: u64,
    active: Vec<ActiveLoop>,
    accum: HashMap<u32, LoopDdg>,
    /// Bytes whose last in-loop writer is watched for downward exposure.
    after_watch: HashMap<u64, Vec<(u32, SiteId)>>,
    /// Live allocations: base -> (size, id, allocation-site eid).
    live_allocs: BTreeMap<u64, (u64, u64, u32)>,
}

impl Profiler {
    /// Creates a profiler for `program` running under the given layout.
    pub fn new(program: &CompiledProgram, layout: LayoutInfo) -> Self {
        Profiler {
            loops_meta: program
                .loops
                .iter()
                .map(|l| (l.label.clone(), l.induction_offset, l.induction_width))
                .collect(),
            alloc_site_eids: program.alloc_sites.clone(),
            stack_lo: layout.master_stack.0,
            stack_hi: layout.master_stack.1,
            active: Vec::new(),
            accum: HashMap::new(),
            after_watch: HashMap::new(),
            live_allocs: BTreeMap::new(),
        }
    }

    /// Finalizes the profile.
    pub fn into_result(mut self) -> ProfileResult {
        while let Some(al) = self.active.pop() {
            Self::fold_loop(&mut self.accum, &mut self.after_watch, al);
        }
        let mut loops: Vec<LoopDdg> = self.accum.into_values().collect();
        loops.retain(|l| !l.label.is_empty());
        loops.sort_by_key(|l| l.loop_id);
        ProfileResult { loops }
    }

    fn fold_loop(
        accum: &mut HashMap<u32, LoopDdg>,
        after_watch: &mut HashMap<u64, Vec<(u32, SiteId)>>,
        al: ActiveLoop,
    ) {
        for (addr, st) in &al.bytes {
            if let Some((site, _)) = st.last_write {
                after_watch
                    .entry(*addr)
                    .or_default()
                    .push((al.loop_id, site));
            }
        }
        let entry = accum.entry(al.loop_id).or_default();
        entry.label = al.ddg.label.clone();
        entry.loop_id = al.loop_id;
        entry.edges.extend(al.ddg.edges);
        entry.upward_exposed.extend(al.ddg.upward_exposed);
        entry.downward_exposed.extend(al.ddg.downward_exposed);
        for (s, c) in al.ddg.site_counts {
            *entry.site_counts.entry(s).or_default() += c;
        }
        for (s, a) in al.ddg.site_allocs {
            entry.site_allocs.entry(s).or_default().extend(a);
        }
        for (s, r) in al.ddg.site_regions {
            let e = entry.site_regions.entry(s).or_default();
            e.heap |= r.heap;
            e.global |= r.global;
            e.stack |= r.stack;
        }
        entry.iterations += al.iter as u64;
        entry.total_accesses += al.ddg.total_accesses;
        entry.instructions += al.ddg.instructions;
    }

    fn allocation_of(&self, addr: u64) -> Option<(u64, u64, u32)> {
        let (&base, &(size, id, eid)) = self.live_allocs.range(..=addr).next_back()?;
        (addr < base + size.max(1)).then_some((base, id, eid))
    }
}

impl Observer for Profiler {
    fn on_access(&mut self, site: SiteId, kind: AccessKind, addr: u64, width: u32, _sp: u64) {
        // Downward-exposure watch (applies after loop entries ended).
        if !self.after_watch.is_empty() {
            match kind {
                AccessKind::Load => {
                    for b in addr..addr + width as u64 {
                        if let Some(watchers) = self.after_watch.get(&b) {
                            for (loop_id, wsite) in watchers.clone() {
                                self.accum
                                    .entry(loop_id)
                                    .or_default()
                                    .downward_exposed
                                    .insert(wsite);
                            }
                        }
                    }
                }
                AccessKind::Store => {
                    for b in addr..addr + width as u64 {
                        self.after_watch.remove(&b);
                    }
                }
            }
        }

        if self.active.is_empty() {
            return;
        }
        let in_stack = addr >= self.stack_lo && addr < self.stack_hi;
        let alloc = if in_stack || addr < self.stack_lo {
            None
        } else {
            self.allocation_of(addr)
        };
        for al in &mut self.active {
            let (ilo, ihi) = al.ind_range;
            if addr < ihi && addr + width as u64 > ilo {
                continue; // the loop's own induction variable
            }
            if in_stack && addr >= al.iter_sp {
                continue; // transient frame: thread-private at runtime
            }
            *al.ddg.site_counts.entry(site).or_default() += 1;
            al.ddg.total_accesses += 1;
            let region = al.ddg.site_regions.entry(site).or_default();
            if in_stack {
                region.stack = true;
            } else if alloc.is_some() {
                region.heap = true;
            } else {
                region.global = true;
            }
            if let Some((_, _, eid)) = alloc {
                al.ddg.site_allocs.entry(site).or_default().insert(eid);
            }
            let iter = al.iter;
            for b in addr..addr + width as u64 {
                let st = al.bytes.entry(b).or_default();
                match kind {
                    AccessKind::Load => {
                        match st.last_write {
                            None => {
                                al.ddg.upward_exposed.insert(site);
                            }
                            Some((wsite, witer)) => {
                                al.ddg.edges.insert(DepEdge {
                                    src: wsite,
                                    dst: site,
                                    kind: DepKind::Flow,
                                    carried: witer != iter,
                                });
                            }
                        }
                        match st.readers.iter_mut().find(|(s, _)| *s == site) {
                            Some(r) => r.1 = iter,
                            None => st.readers.push((site, iter)),
                        }
                    }
                    AccessKind::Store => {
                        if let Some((wsite, witer)) = st.last_write {
                            al.ddg.edges.insert(DepEdge {
                                src: wsite,
                                dst: site,
                                kind: DepKind::Output,
                                carried: witer != iter,
                            });
                        }
                        for &(rsite, riter) in &st.readers {
                            al.ddg.edges.insert(DepEdge {
                                src: rsite,
                                dst: site,
                                kind: DepKind::Anti,
                                carried: riter != iter,
                            });
                        }
                        st.readers.clear();
                        st.last_write = Some((site, iter));
                    }
                }
            }
        }
    }

    fn on_loop(&mut self, ev: LoopEvent, loop_id: u32, sp: u64, work: u64) {
        match ev {
            LoopEvent::Begin => {
                // `sp` is the enclosing frame base for Begin events.
                let (label, ind_off, ind_w) = self.loops_meta[loop_id as usize].clone();
                let ind_lo = sp + ind_off as u64;
                self.active.push(ActiveLoop {
                    loop_id,
                    iter: 0,
                    iter_sp: u64::MAX,
                    ind_range: (ind_lo, ind_lo + ind_w as u64),
                    begin_work: work,
                    bytes: HashMap::new(),
                    ddg: LoopDdg {
                        label,
                        loop_id,
                        ..Default::default()
                    },
                });
            }
            LoopEvent::IterStart => {
                if let Some(al) = self.active.iter_mut().rev().find(|a| a.loop_id == loop_id) {
                    al.iter += 1;
                    al.iter_sp = sp;
                }
            }
            LoopEvent::End => {
                while let Some(mut al) = self.active.pop() {
                    let id = al.loop_id;
                    al.ddg.instructions += work.saturating_sub(al.begin_work);
                    Self::fold_loop(&mut self.accum, &mut self.after_watch, al);
                    if id == loop_id {
                        break;
                    }
                }
            }
        }
    }

    fn on_alloc(&mut self, alloc: Allocation, pc: u32) {
        let eid = self
            .alloc_site_eids
            .get(&pc)
            .copied()
            .unwrap_or(dse_lang::ast::NO_EID);
        self.live_allocs
            .insert(alloc.base, (alloc.size, alloc.id, eid));
    }

    fn on_free(&mut self, alloc: Allocation) {
        self.live_allocs.remove(&alloc.base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_ir::lower::LowerOptions;

    fn profile(src: &str) -> ProfileResult {
        let ast = dse_lang::compile_to_ast(src).unwrap();
        let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
        let (res, _) = profile_program(compiled, VmConfig::default()).unwrap();
        res
    }

    /// Scratch variable written then read per iteration: privatizable
    /// pattern — carried anti/output, no carried flow, no exposure.
    #[test]
    fn scratch_scalar_has_carried_anti_output_only() {
        let res = profile(
            "int main() { int t; int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 10; i++) { t = i * 2; s += t; }
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        assert_eq!(l.iterations, 10);
        let kinds: HashSet<(DepKind, bool)> = l.edges.iter().map(|e| (e.kind, e.carried)).collect();
        // t: independent flow (t = .. ; .. = t), carried anti (read t iter
        // i, write t iter i+1), carried output (write t each iter).
        assert!(kinds.contains(&(DepKind::Flow, false)));
        assert!(kinds.contains(&(DepKind::Anti, true)));
        assert!(kinds.contains(&(DepKind::Output, true)));
        // s is an accumulator: carried flow.
        assert!(kinds.contains(&(DepKind::Flow, true)));
    }

    #[test]
    fn accumulator_is_upward_and_downward_exposed() {
        let res = profile(
            "int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 5; i++) { s += i; }
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        // `s += i` loads s: first iteration reads the init from outside.
        assert!(!l.upward_exposed.is_empty());
        // `return s` reads the final value written in the loop.
        assert!(!l.downward_exposed.is_empty());
    }

    #[test]
    fn write_first_scratch_is_not_exposed() {
        let res = profile(
            "int main() { int t; t = 99;
               #pragma candidate hot
               for (int i = 0; i < 5; i++) { t = i; t = t + 1; }
               return 0; }",
        );
        let l = res.by_label("hot").unwrap();
        assert!(l.upward_exposed.is_empty(), "{:?}", l.upward_exposed);
        assert!(l.downward_exposed.is_empty());
    }

    #[test]
    fn covered_read_is_independent_not_carried_flow() {
        // t is written every iteration before being read: the read's value
        // never crosses iterations, so no carried flow on t.
        let res = profile(
            "int main() { int t; int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 8; i++) { t = i; s = s + t; }
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        // Find flow edges whose sink reads t: all must be independent.
        // (We can't name sites here, but: exactly one carried flow pair may
        // exist — the accumulator s. Count distinct carried-flow sinks.)
        let carried_flow: Vec<_> = l
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Flow && e.carried)
            .collect();
        let sinks: HashSet<_> = carried_flow.iter().map(|e| e.dst).collect();
        assert_eq!(sinks.len(), 1, "only the accumulator load carries flow");
    }

    #[test]
    fn heap_scratch_buffer_tracks_alloc_sites() {
        let res = profile(
            "int main() {
               int *buf; buf = malloc(16 * sizeof(int));
               int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 6; i++) {
                 for (int k = 0; k < 16; k++) { buf[k] = i + k; }
                 for (int k = 0; k < 16; k++) { s += buf[k]; }
               }
               free(buf);
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        // The buffer accesses must be attributed to a heap allocation site.
        let heap_sites: Vec<_> = l
            .site_regions
            .iter()
            .filter(|(_, r)| r.heap)
            .map(|(s, _)| *s)
            .collect();
        assert!(!heap_sites.is_empty());
        for s in &heap_sites {
            assert!(!l.site_allocs[s].is_empty());
        }
        // buf writes/reads: carried anti and output (reuse across
        // iterations), but reads are covered -> no carried flow from buf.
        assert!(!l
            .sites_in_carried(&[DepKind::Anti, DepKind::Output])
            .is_empty());
    }

    #[test]
    fn induction_variable_is_excluded() {
        let res = profile(
            "int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 4; i++) { s += i; }
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        // No edge may involve the induction variable: its step-write and
        // cond-read would otherwise produce a carried flow. The only
        // carried flow must be the accumulator (one sink).
        let sinks: HashSet<_> = l
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Flow && e.carried)
            .map(|e| e.dst)
            .collect();
        assert_eq!(sinks.len(), 1);
    }

    #[test]
    fn callee_frame_accesses_are_transient() {
        let res = profile(
            "int work(int x) { int t; t = x * 2; return t + 1; }
             int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 6; i++) { s += work(i); }
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        // `t` and `x` live in work()'s frame, created after IterStart: they
        // must not appear. Only the accumulator's sites (plus the bound
        // read) remain — no stack-region write sites besides s.
        let stack_sites = l.site_regions.values().filter(|r| r.stack).count();
        assert!(
            stack_sites <= 2,
            "only s's load/store should remain: {l:#?}"
        );
    }

    #[test]
    fn recast_short_reads_depend_on_int_writes() {
        let res = profile(
            "int main() {
               int *zptr; zptr = malloc(8 * sizeof(int));
               short *v; v = (short*)zptr;
               int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 4; i++) {
                 for (int k = 0; k < 8; k++) { zptr[k] = i + k; }
                 for (int k = 0; k < 16; k++) { s += v[k]; }
               }
               free(zptr);
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        // The short loads read bytes written by the int stores: there must
        // be independent flow edges between distinct sites (byte-granular
        // tracking catches the overlap).
        assert!(l
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Flow && !e.carried && e.src != e.dst));
    }

    #[test]
    fn loop_entered_multiple_times_accumulates() {
        let res = profile(
            "int main() { int s; s = 0;
               for (int outer = 0; outer < 3; outer++) {
                 #pragma candidate inner
                 for (int i = 0; i < 4; i++) { s += i; }
               }
               return s; }",
        );
        let l = res.by_label("inner").unwrap();
        assert_eq!(l.iterations, 12);
    }

    #[test]
    fn linked_list_rebuild_per_iteration_is_private_pattern() {
        // The dijkstra idiom: a list is built and torn down every
        // iteration. Its nodes must show carried anti/output (reused heap
        // chunks) but no carried flow, and no upward exposure from nodes.
        let res = profile(
            "struct Node { int v; struct Node *next; };
             int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 6; i++) {
                 struct Node *head; head = 0;
                 for (int k = 0; k < 5; k++) {
                   struct Node *n; n = malloc(sizeof(struct Node));
                   n->v = k + i; n->next = head; head = n;
                 }
                 while (head) {
                   s += head->v;
                   struct Node *d; d = head; head = head->next; free(d);
                 }
               }
               return s; }",
        );
        let l = res.by_label("hot").unwrap();
        let carried_flow_heap: Vec<_> = l
            .edges
            .iter()
            .filter(|e| {
                e.kind == DepKind::Flow
                    && e.carried
                    && l.site_regions.get(&e.dst).is_some_and(|r| r.heap)
            })
            .collect();
        assert!(
            carried_flow_heap.is_empty(),
            "list nodes are written before read each iteration: {carried_flow_heap:?}"
        );
        assert!(!l.sites_in_carried(&[DepKind::Output]).is_empty());
    }

    #[test]
    fn downward_exposure_cleared_by_overwrite() {
        let res = profile(
            "int g; int main() {
               #pragma candidate hot
               for (int i = 0; i < 4; i++) { g = i; }
               g = 0;
               return g; }",
        );
        let l = res.by_label("hot").unwrap();
        assert!(
            l.downward_exposed.is_empty(),
            "g is overwritten before the read after the loop"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use dse_ir::lower::LowerOptions;

    fn profile(src: &str) -> ProfileResult {
        let ast = dse_lang::compile_to_ast(src).unwrap();
        let compiled = dse_ir::lower_program(&ast, &LowerOptions::default()).unwrap();
        let (res, _) = profile_program(compiled, VmConfig::default()).unwrap();
        res
    }

    /// Nested candidate loops are profiled independently and
    /// simultaneously: the inner loop's scratch is carried for the inner
    /// loop but the outer loop sees the same accesses too.
    #[test]
    fn nested_candidates_profiled_together() {
        let res = profile(
            "int main() { int s; s = 0;
               #pragma candidate outer
               for (int i = 0; i < 3; i++) {
                 #pragma candidate inner
                 for (int j = 0; j < 4; j++) {
                   int t; t = i * 4 + j; s += t;
                 }
               }
               return s; }",
        );
        let outer = res.by_label("outer").unwrap();
        let inner = res.by_label("inner").unwrap();
        assert_eq!(outer.iterations, 3);
        assert_eq!(inner.iterations, 12, "3 entries x 4 iterations");
        // t is written before read in both loops' iterations: private
        // pattern with carried anti/output in both.
        for l in [outer, inner] {
            assert!(!l
                .sites_in_carried(&[DepKind::Anti, DepKind::Output])
                .is_empty());
        }
    }

    /// Realloc moves a buffer; later reads of the moved data must not be
    /// attributed to the old allocation and do not fabricate carried flow
    /// inside an iteration.
    #[test]
    fn realloc_relocation_is_conservative() {
        let res = profile(
            "int main() { long s; s = 0;
               int *buf; buf = malloc(4 * sizeof(int));
               int cap; cap = 4;
               #pragma candidate hot
               for (int i = 0; i < 8; i++) {
                 int need; need = 4 + i;
                 if (need > cap) { buf = realloc(buf, (long)need * sizeof(int)); cap = need; }
                 for (int k = 0; k < need; k++) { buf[k] = i + k; }
                 for (int k = 0; k < need; k++) { s += buf[k]; }
               }
               out_long(s);
               free(buf);
               return 0; }",
        );
        let l = res.by_label("hot").unwrap();
        // The buffer pointer itself is carried (read to realloc, written by
        // realloc): there must be carried flow on the *pointer variable*.
        assert!(!l.sites_in_carried(&[DepKind::Flow]).is_empty());
        // Buffer contents are written before read each iteration: some
        // site must still be free of carried flow (the content accesses).
        let carried_flow = l.sites_in_carried(&[DepKind::Flow]);
        let with_anti = l.sites_in_carried(&[DepKind::Anti, DepKind::Output]);
        assert!(with_anti.iter().any(|s| !carried_flow.contains(s)));
    }

    /// Float accesses profile like integer ones (lbm's pattern).
    #[test]
    fn float_buffers_profile() {
        let res = profile(
            "int main() {
               float *f; f = malloc(6 * sizeof(float));
               float acc; acc = 0.0;
               #pragma candidate hot
               for (int i = 0; i < 5; i++) {
                 for (int d = 0; d < 6; d++) { f[d] = (float)(i + d); }
                 for (int d = 0; d < 6; d++) { acc = acc + f[d]; }
               }
               out_float(acc);
               free(f);
               return 0; }",
        );
        let l = res.by_label("hot").unwrap();
        assert!(l.total_accesses > 0);
        // f contents: carried anti/output, no carried flow.
        let heap_sites: Vec<_> = l
            .site_regions
            .iter()
            .filter(|(_, r)| r.heap)
            .map(|(s, _)| *s)
            .collect();
        assert!(!heap_sites.is_empty());
        let carried_flow = l.sites_in_carried(&[DepKind::Flow]);
        for s in &heap_sites {
            assert!(!carried_flow.contains(s), "covered float reads");
        }
    }

    /// Instructions are attributed to loops for Table 4's %time.
    #[test]
    fn instruction_attribution() {
        let res = profile(
            "int main() { long s; s = 0;
               for (int w = 0; w < 50; w++) { s += w; }
               #pragma candidate hot
               for (int i = 0; i < 200; i++) { s += i * i; }
               out_long(s);
               return 0; }",
        );
        let l = res.by_label("hot").unwrap();
        assert!(
            l.instructions > 1000,
            "the hot loop dominates: {}",
            l.instructions
        );
    }
}
