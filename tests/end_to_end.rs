//! Cross-crate integration tests over the whole stack, exercising
//! combinations that the per-crate suites do not: several privatization
//! idioms in one program, expansion composed with the schedule simulator,
//! and the pretty report plumbing the examples rely on.

use dse_bench::sim;
use dse_core::{Analysis, OptLevel};
use dse_runtime::{Vm, VmConfig};

/// A program combining four idioms in one candidate loop: a global scratch
/// array, a heap buffer with constant span, a per-iteration linked list,
/// and an accumulator (forcing DOACROSS with a narrow ordered window).
const KITCHEN_SINK: &str = "
    struct Node { int v; struct Node *next; };
    int gscratch[8];
    int main() {
      int *buf; buf = malloc(12 * sizeof(int));
      long acc; acc = 0;
      #pragma candidate sink
      for (int i = 0; i < 24; i++) {
        for (int k = 0; k < 8; k++) { gscratch[k] = i + k; }
        for (int k = 0; k < 12; k++) { buf[k] = gscratch[k % 8] * 2; }
        struct Node *head; head = 0;
        for (int k = 0; k < 4; k++) {
          struct Node *n; n = malloc(sizeof(struct Node));
          n->v = buf[k] + i;
          n->next = head;
          head = n;
        }
        int s; s = 0;
        while (head) {
          s += head->v;
          struct Node *d; d = head;
          head = head->next;
          free(d);
        }
        acc += s;
      }
      out_long(acc);
      free(buf);
      return 0;
    }";

fn outputs(compiled: dse_ir::bytecode::CompiledProgram, n: u32) -> Vec<i64> {
    let mut vm = Vm::new(
        compiled,
        VmConfig {
            nthreads: n,
            ..Default::default()
        },
    )
    .unwrap();
    vm.run().unwrap();
    vm.outputs_int()
}

#[test]
fn kitchen_sink_all_configurations_agree() {
    let analysis = Analysis::from_source(KITCHEN_SINK, VmConfig::default()).unwrap();
    let reference = outputs(analysis.serial.clone(), 1);
    assert_eq!(
        analysis.classification("sink").unwrap().mode,
        dse_ir::loops::ParMode::DoAcross
    );
    for opt in [OptLevel::None, OptLevel::NoConstSpan, OptLevel::Full] {
        for n in [1u32, 3, 8] {
            let t = analysis.transform(opt, n).unwrap();
            assert_eq!(outputs(t.parallel, n), reference, "{opt:?} n={n}");
        }
    }
    for n in [1u32, 4] {
        let b = analysis.baseline_parallel(n).unwrap();
        assert_eq!(outputs(b.parallel, n), reference, "baseline n={n}");
    }
}

#[test]
fn kitchen_sink_report_covers_all_idiom_kinds() {
    let analysis = Analysis::from_source(KITCHEN_SINK, VmConfig::default()).unwrap();
    let t = analysis.transform(OptLevel::Full, 4).unwrap();
    assert!(t.report.expanded_allocs >= 2, "buf and the list nodes");
    assert!(t.report.expanded_globals >= 1, "gscratch");
    assert!(t.report.expanded_locals >= 1, "the list head pointers");
    assert!(t.report.expanded_scalar_locals >= 1, "s and friends");
}

#[test]
fn simulated_schedule_beats_serial_only_with_narrow_window() {
    let analysis = Analysis::from_source(KITCHEN_SINK, VmConfig::default()).unwrap();
    let t = analysis.transform(OptLevel::Full, 4).unwrap();
    let mut cfg = VmConfig {
        record_iteration_costs: true,
        ..Default::default()
    };
    cfg.nthreads = 1;
    let mut vm = Vm::new(t.parallel.clone(), cfg).unwrap();
    let report = vm.run().unwrap();
    let modes = t
        .parallel
        .loops
        .iter()
        .enumerate()
        .map(|(i, l)| (i as u32, l.mode.unwrap_or(dse_ir::loops::ParMode::DoAll)))
        .collect();
    let traces = vm.iteration_costs();
    let s1 = sim::simulate_program(report.counters.work, &traces, &modes, 1, false);
    let s4 = sim::simulate_program(report.counters.work, &traces, &modes, 4, false);
    // The accumulator window is one statement at the end of the body: the
    // loop must pipeline well.
    let speedup = s1.total_time / s4.total_time;
    assert!(
        speedup > 2.0,
        "expected pipelined speedup, got {speedup:.2}"
    );
}

/// Programs without candidate loops pass through the pipeline unchanged.
#[test]
fn no_candidates_is_identity() {
    let src = "int main() { int s; s = 0;
        for (int i = 0; i < 10; i++) { s += i; }
        out_long(s); return 0; }";
    let analysis = Analysis::from_source(src, VmConfig::default()).unwrap();
    assert!(analysis.profile.loops.is_empty());
    let t = analysis.transform(OptLevel::Full, 4).unwrap();
    assert_eq!(t.report.privatized_structures(), 0);
    assert_eq!(outputs(t.parallel, 4), outputs(analysis.serial.clone(), 1));
}

/// Transform determinism: same input, same plan, byte-identical programs.
#[test]
fn transform_is_deterministic() {
    let a1 = Analysis::from_source(KITCHEN_SINK, VmConfig::default()).unwrap();
    let a2 = Analysis::from_source(KITCHEN_SINK, VmConfig::default()).unwrap();
    let t1 = a1.transform(OptLevel::Full, 4).unwrap();
    let t2 = a2.transform(OptLevel::Full, 4).unwrap();
    assert_eq!(t1.program, t2.program);
    assert_eq!(t1.report, t2.report);
}

/// Locates the `dsec` binary built alongside this test executable
/// (`target/<profile>/dsec`); the workspace builds every bin target
/// before integration tests run.
fn dsec_binary() -> std::path::PathBuf {
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop(); // the test binary's own name
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("dsec{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.exists(),
        "dsec not found at {} — build the workspace first",
        bin.display()
    );
    bin
}

#[test]
fn dsec_metrics_agree_with_vm_report() {
    use dse_telemetry::{Json, RunMetrics};

    let dir = std::env::temp_dir().join(format!("dse-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("sink.cee");
    std::fs::write(&prog, KITCHEN_SINK).unwrap();

    let out = std::process::Command::new(dsec_binary())
        .args([
            prog.to_str().unwrap(),
            "--run",
            "--threads",
            "4",
            "--metrics",
            "-",
        ])
        .output()
        .expect("spawn dsec");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "dsec failed:\n{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();

    let line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("metrics JSON on stdout");
    let m = RunMetrics::from_json(&Json::parse(line).expect("parseable JSON"))
        .expect("well-formed metrics");

    // The per-thread Figure-12 counters must sum to the aggregate the VM
    // reported (the `[N instructions, ...]` stderr line).
    let vm = m.vm.expect("--run populates vm stats");
    let per_thread_work: u64 = vm.per_thread.iter().map(|c| c.work).sum();
    assert_eq!(per_thread_work, vm.totals.work);
    let reported: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix('[')?.split(' ').next()?.parse().ok())
        .expect("instruction count on stderr");
    assert_eq!(vm.totals.work, reported);

    // DOACROSS scheduling of the kitchen sink shows up as sync activity.
    assert!(vm.per_thread.len() == 4);
    assert!(vm.totals.sync_ops > 0, "ordered window executed Wait/Post");

    std::fs::remove_dir_all(&dir).ok();
}
